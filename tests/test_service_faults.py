"""Fault injection, the write-ahead journal, crash recovery, store GC,
and graceful remote degradation.

The headline invariant throughout: whatever fault sequence is injected
— dropped connections, truncated responses, torn store writes, worker
crashes before/after publish, a daemon refusing work mid-shutdown —
the results a client ends up with are byte-identical to an inline run.
"""

import json
import os
import threading
import time

import pytest

from repro.api import Engine, SweepSpec
from repro.api import cache as result_cache
from repro.api.cache import cell_hash
from repro.core import presets
from repro.service import protocol
from repro.service.daemon import SweepService, make_server
from repro.service.faults import (
    CRASH_KINDS,
    FAULT_CRASH_AFTER_PUBLISH,
    FAULT_CRASH_BEFORE_PUBLISH,
    FAULT_DROP_CONNECTION,
    FAULT_KINDS,
    FAULT_TORN_STORE_WRITE,
    FAULT_WORKER_EXCEPTION,
    KIND_SITES,
    SITE_HTTP,
    SITE_STORE,
    SITE_WORKER,
    SITES,
    DaemonCrash,
    FaultPlan,
    FaultPlanError,
    FaultSpec,
)
from repro.service.journal import (
    JobJournal,
    JournalCell,
    JournalError,
    resolve_journal_path,
)
from repro.service.protocol import ProtocolError
from repro.service.remote import RemoteClient, RemoteError
from repro.service.store import ResultStore
from repro.timing.stats import Stats

TINY = SweepSpec.from_presets(
    ["baseline", "warp64"], workloads=["histogram"], size="tiny"
)

CELL_A = ("histogram", "tiny", "baseline", presets.baseline())
CELL_B = ("histogram", "tiny", "warp64", presets.warp64())

#: A server nobody listens on (port 9 is discard; connect refuses fast).
DEAD_URL = "http://127.0.0.1:9"


@pytest.fixture(autouse=True)
def fresh_memo():
    result_cache.clear()
    yield
    result_cache.clear()


class _StubEngine:
    """Counts run_cell calls; optionally fails every cell."""

    def __init__(self, fail=False):
        self.calls = 0
        self.fail = fail

    def run_cell(self, workload, size, config, verify=False, cache=True):
        self.calls += 1
        if self.fail:
            raise RuntimeError("boom")
        return Stats(cycles=7, thread_instructions=3, instructions_issued=2)


def _journalled_service(tmp_path, fault_plan=None, engine=None):
    store = ResultStore(str(tmp_path / "store"), fault_plan=fault_plan)
    journal = JobJournal(resolve_journal_path(None, store.root))
    service = SweepService(
        store,
        workers=0,
        engine=engine if engine is not None else _StubEngine(),
        journal=journal,
        fault_plan=fault_plan,
    )
    return service


def _submit(service, cells=(CELL_A, CELL_B), verify=False):
    ack = service.submit(protocol.submit_message(list(cells), verify=verify))
    return str(ack["job"])


def _serve(tmp_path, name="store", **kwargs):
    kwargs.setdefault("workers", 2)
    kwargs.setdefault("heartbeat", 0.1)
    server = make_server(store_dir=str(tmp_path / name), **kwargs)
    thread = threading.Thread(target=server.serve_forever, daemon=True)
    thread.start()
    host, port = server.server_address[:2]
    return server, "http://%s:%d" % (host, port)


def _stop(server):
    server.shutdown()
    server.service.shutdown_gracefully()
    server.server_close()


# ----------------------------------------------------------------------
# FaultPlan
# ----------------------------------------------------------------------


class TestFaultPlan:
    def test_vocabulary_is_closed_and_sited(self):
        assert len(set(FAULT_KINDS)) == len(FAULT_KINDS)
        assert set(KIND_SITES) == set(FAULT_KINDS)
        assert set(KIND_SITES.values()) == set(SITES)
        assert set(CRASH_KINDS) < set(FAULT_KINDS)

    def test_parse_describe_round_trip(self):
        text = "drop-connection@jobs:2x3,worker-exception:1,torn-store-write:4"
        assert FaultPlan.parse(text).describe() == text

    @pytest.mark.parametrize(
        "spec,match",
        [
            ("no-such-kind", "unknown fault kind"),
            ("drop-connection:0", "trigger must be >= 1"),
            ("drop-connection:zap", "bad fault trigger"),
            ("drop-connection@", "empty operation"),
            ("", "names no faults"),
            (" , ", "names no faults"),
        ],
    )
    def test_parse_rejections(self, spec, match):
        with pytest.raises(FaultPlanError, match=match):
            FaultPlan.parse(spec)

    def test_fire_targets_nth_matching_operation(self):
        plan = FaultPlan.parse("drop-connection@jobs:2")
        assert plan.fire(SITE_HTTP, "health") is None  # op filtered out
        assert plan.fire(SITE_HTTP, "jobs") is None  # 1st match: no
        assert plan.fire(SITE_HTTP, "jobs") == FAULT_DROP_CONNECTION
        assert plan.fire(SITE_HTTP, "jobs") is None  # count exhausted
        assert plan.history == [
            (SITE_HTTP, "jobs", 2, FAULT_DROP_CONNECTION)
        ]

    def test_count_widens_the_window(self):
        plan = FaultPlan.parse("worker-exception:2x2")
        fired = [plan.fire(SITE_WORKER, "bfs") for _ in range(4)]
        assert fired == [None, FAULT_WORKER_EXCEPTION, FAULT_WORKER_EXCEPTION, None]

    def test_specs_count_independently_first_match_wins(self):
        plan = FaultPlan.parse("worker-exception:1,torn-store-write:1")
        # Different sites never interfere...
        assert plan.fire(SITE_STORE, "bfs") == FAULT_TORN_STORE_WRITE
        assert plan.fire(SITE_WORKER, "bfs") == FAULT_WORKER_EXCEPTION
        # ...and two specs on one site each keep their own counter.
        both = FaultPlan.parse("worker-exception:1,crash-after-publish:2")
        assert both.fire(SITE_WORKER, "a") == FAULT_WORKER_EXCEPTION
        assert both.fire(SITE_WORKER, "b") == FAULT_CRASH_AFTER_PUBLISH

    def test_fire_rejects_unknown_site(self):
        with pytest.raises(ValueError, match="fault site"):
            FaultPlan.parse("worker-exception").fire("disk", "x")

    def test_from_seed_is_reproducible(self):
        assert (
            FaultPlan.from_seed(7).describe() == FaultPlan.from_seed(7).describe()
        )
        plans = {FaultPlan.from_seed(seed).describe() for seed in range(8)}
        assert len(plans) > 1  # seeds actually explore the space
        for plan in (FaultPlan.from_seed(seed) for seed in range(8)):
            for spec in plan.specs:
                assert spec.kind in FAULT_KINDS
                assert 1 <= spec.nth <= 6

    def test_crash_without_hook_raises_daemon_crash(self):
        plan = FaultPlan.parse("crash-before-publish")
        with pytest.raises(DaemonCrash) as excinfo:
            plan.crash(FAULT_CRASH_BEFORE_PUBLISH)
        assert excinfo.value.kind == FAULT_CRASH_BEFORE_PUBLISH
        assert not isinstance(excinfo.value, Exception)  # un-swallowable

    def test_crash_hook_runs_first(self):
        died = []
        plan = FaultPlan([FaultSpec("crash-after-publish")], on_crash=died.append)
        with pytest.raises(DaemonCrash):
            plan.crash(FAULT_CRASH_AFTER_PUBLISH)
        assert died == [FAULT_CRASH_AFTER_PUBLISH]

    def test_crash_rejects_non_crash_kind(self):
        with pytest.raises(ValueError, match="not a crash"):
            FaultPlan.parse("worker-exception").crash(FAULT_WORKER_EXCEPTION)


# ----------------------------------------------------------------------
# The write-ahead journal
# ----------------------------------------------------------------------


def _journal_cells():
    return [
        JournalCell(0, *CELL_A[:3], CELL_A[3], cell_hash(*CELL_A[:2], CELL_A[3])),
        JournalCell(1, *CELL_B[:3], CELL_B[3], cell_hash(*CELL_B[:2], CELL_B[3])),
    ]


class TestJournal:
    def test_round_trip(self, tmp_path):
        path = str(tmp_path / "journal.ndjson")
        with JobJournal(path) as journal:
            cells = _journal_cells()
            journal.record_job("j000001", False, cells)
            journal.record_cell("j000001", 0, cells[0].hash, protocol.STATUS_OK)
            journal.record_job("j000002", True, cells[:1])
            journal.record_cancel("j000002")
        jobs = JobJournal.replay_path(path)
        assert [job.job_id for job in jobs] == ["j000001", "j000002"]
        first, second = jobs
        assert not first.verify and not first.finished and not first.cancelled
        assert first.resolved == {0: (protocol.STATUS_OK, None)}
        assert first.cells[1].config == CELL_B[3]  # decoded, not pickled
        assert second.verify and second.cancelled

    def test_failed_cell_keeps_its_error(self, tmp_path):
        path = str(tmp_path / "j.ndjson")
        with JobJournal(path) as journal:
            journal.record_job("j1", False, _journal_cells()[:1])
            journal.record_cell(
                "j1", 0, "", protocol.STATUS_FAILED, error="RuntimeError: boom"
            )
        (job,) = JobJournal.replay_path(path)
        assert job.resolved[0] == (protocol.STATUS_FAILED, "RuntimeError: boom")
        assert job.finished

    def test_record_cell_rejects_unknown_status(self, tmp_path):
        with JobJournal(str(tmp_path / "j.ndjson")) as journal:
            with pytest.raises(JournalError, match="status"):
                journal.record_cell("j1", 0, "", "exploded")

    def test_torn_tail_is_dropped(self, tmp_path):
        path = str(tmp_path / "j.ndjson")
        with JobJournal(path) as journal:
            journal.record_job("j1", False, _journal_cells())
        with open(path, "a", encoding="utf-8") as handle:
            handle.write('{"j": 1, "type": "cell", "job": "j1", "id"')  # torn
        (job,) = JobJournal.replay_path(path)
        assert job.resolved == {}  # the torn resolution never happened

    def test_version_mismatch_fails_loudly(self, tmp_path):
        path = str(tmp_path / "j.ndjson")
        with open(path, "w", encoding="utf-8") as handle:
            handle.write('{"j": 99, "type": "cancel", "job": "j1"}\n')
        with pytest.raises(JournalError, match="version"):
            JobJournal.replay_path(path)

    def test_tampered_content_address_fails_loudly(self, tmp_path):
        path = str(tmp_path / "j.ndjson")
        with JobJournal(path) as journal:
            journal.record_job("j1", False, _journal_cells()[:1])
        with open(path, encoding="utf-8") as handle:
            record = json.loads(handle.read())
        record["cells"][0]["hash"] = "0" * 64
        with open(path, "w", encoding="utf-8") as handle:
            handle.write(json.dumps(record) + "\n")
        with pytest.raises(JournalError, match="content address mismatch"):
            JobJournal.replay_path(path)

    def test_unknown_record_type_fails_loudly(self, tmp_path):
        path = str(tmp_path / "j.ndjson")
        with open(path, "w", encoding="utf-8") as handle:
            handle.write('{"j": 1, "type": "wat"}\n')
        with pytest.raises(JournalError, match="record type"):
            JobJournal.replay_path(path)

    def test_rotate_compacts_to_live_jobs_and_stays_appendable(self, tmp_path):
        path = str(tmp_path / "j.ndjson")
        journal = JobJournal(path)
        cells = _journal_cells()
        journal.record_job("j1", False, cells)  # will finish
        journal.record_cell("j1", 0, cells[0].hash, protocol.STATUS_OK)
        journal.record_cell("j1", 1, cells[1].hash, protocol.STATUS_OK)
        journal.record_job("j2", False, cells[:1])  # stays live
        live = [job for job in journal.replay() if not job.finished]
        journal.rotate(live)
        jobs = journal.replay()
        assert [job.job_id for job in jobs] == ["j2"]
        # The post-rotate handle still appends to the compacted file.
        journal.record_cell("j2", 0, cells[0].hash, protocol.STATUS_OK)
        (job,) = journal.replay()
        assert job.finished
        journal.close()

    def test_closed_journal_refuses_appends(self, tmp_path):
        journal = JobJournal(str(tmp_path / "j.ndjson"))
        journal.close()
        with pytest.raises(JournalError, match="closed"):
            journal.record_cancel("j1")

    def test_resolve_journal_path(self, tmp_path):
        root = str(tmp_path / "store")
        assert resolve_journal_path(None, root) == os.path.join(
            root, "journal.ndjson"
        )
        assert resolve_journal_path("/x/y.ndjson", root) == "/x/y.ndjson"


# ----------------------------------------------------------------------
# Store GC and verification
# ----------------------------------------------------------------------


class TestStoreGC:
    def _fill(self, tmp_path, n=4):
        store = ResultStore(str(tmp_path / "store"))
        digests = []
        for i in range(n):
            stats = Stats(
                cycles=i + 1, thread_instructions=1, instructions_issued=1
            )
            config = presets.baseline()
            digest = store.store("histogram", "s%d" % i, config, stats)
            # Distinct mtimes so eviction order is deterministic.
            os.utime(store.path_for(digest), (1000.0 + i, 1000.0 + i))
            digests.append(digest)
        return store, digests

    def test_max_entries_keeps_newest(self, tmp_path):
        store, digests = self._fill(tmp_path)
        result = store.gc(max_entries=2)
        assert (result.examined, result.evicted, result.kept) == (4, 2, 2)
        assert sorted(store.digests()) == sorted(digests[2:])

    def test_max_age_with_explicit_now(self, tmp_path):
        store, digests = self._fill(tmp_path)
        result = store.gc(max_age=1.5, now=1003.0)
        assert result.evicted == 2  # mtimes 1000, 1001
        assert set(store.digests()) == set(digests[2:])

    def test_max_bytes_evicts_oldest_first(self, tmp_path):
        store, digests = self._fill(tmp_path)
        size = os.path.getsize(store.path_for(digests[0]))
        result = store.gc(max_bytes=size * 2 + 1)
        assert result.evicted == 2
        assert result.evicted_bytes > 0
        assert set(store.digests()) == set(digests[2:])

    def test_dry_run_deletes_nothing(self, tmp_path):
        store, digests = self._fill(tmp_path)
        result = store.gc(max_entries=0, dry_run=True)
        assert result.dry_run and result.evicted == 4
        assert len(store) == 4

    def test_reserved_digests_never_evicted(self, tmp_path):
        store, digests = self._fill(tmp_path)
        result = store.gc(max_entries=0, reserved=frozenset(digests[:2]))
        assert result.evicted == 2
        assert result.reserved == 2
        assert sorted(store.digests()) == sorted(digests[:2])

    def test_gc_budget_validation(self, tmp_path):
        store, _ = self._fill(tmp_path, n=1)
        for kwargs in ({"max_age": -1}, {"max_entries": -1}, {"max_bytes": -1}):
            with pytest.raises(ValueError):
                store.gc(**kwargs)

    def test_tombstone_reads_as_miss_and_is_swept(self, tmp_path):
        store, digests = self._fill(tmp_path, n=2)
        path = store.path_for(digests[0])
        # A GC killed between rename and unlink leaves only a tombstone.
        os.replace(path, path + ".tomb")
        assert store.get_entry(digests[0]) is None
        assert len(store) == 1
        result = store.gc()
        assert result.tombstones_swept == 1
        assert not os.path.exists(path + ".tomb")

    def test_delete_is_idempotent(self, tmp_path):
        store, digests = self._fill(tmp_path, n=1)
        assert store.delete(digests[0]) is True
        assert store.delete(digests[0]) is False

    def test_gc_beside_active_daemon_spares_inflight_cells(self, tmp_path):
        """The satellite invariant: GC never evicts what a daemon has
        in flight, and the daemon's reserved set is exactly its
        in-flight digests."""
        service = _journalled_service(tmp_path)
        _submit(service)  # workers=0: both cells stay queued/in flight
        reserved = service.reserved_digests()
        assert reserved == {
            cell_hash(*CELL_A[:2], CELL_A[3]),
            cell_hash(*CELL_B[:2], CELL_B[3]),
        }
        # Pre-publish one reserved cell (a worker that already stored
        # it) plus an unrelated old entry; an aggressive concurrent GC
        # must only evict the unrelated one.
        store = service.store
        store.store(CELL_A[0], CELL_A[1], CELL_A[3], Stats(cycles=7))
        other = store.store(
            "histogram", "other", presets.baseline(), Stats(cycles=1)
        )
        result = store.gc(max_entries=0, reserved=reserved)
        assert result.reserved == 1
        assert store.get_entry(other) is None
        assert store.get_entry(cell_hash(*CELL_A[:2], CELL_A[3])) is not None
        service.shutdown_gracefully()


class TestStoreVerify:
    def test_clean_store_verifies(self, tmp_path):
        store = ResultStore(str(tmp_path / "store"))
        store.store(*CELL_A[:2], CELL_A[3], Stats(cycles=7))
        result = store.verify()
        assert result.ok and result.examined == 1

    def test_verify_flags_torn_and_mismatched_entries(self, tmp_path):
        plan = FaultPlan.parse("torn-store-write:1")
        store = ResultStore(str(tmp_path / "store"), fault_plan=plan)
        torn = store.store(*CELL_A[:2], CELL_A[3], Stats(cycles=7))
        good = store.store(*CELL_B[:2], CELL_B[3], Stats(cycles=7))
        # A good entry filed under the wrong content address.
        alias = "0" * 64
        os.makedirs(os.path.dirname(store.path_for(alias)), exist_ok=True)
        os.replace(store.path_for(good), store.path_for(alias))
        result = store.verify()
        assert not result.ok and result.examined == 2
        reasons = {p.digest: p.reason for p in result.problems}
        assert "torn" in reasons[torn]
        assert "content address mismatch" in reasons[alias]
        # And the torn entry already reads as a miss.
        assert store.get_entry(torn) is None

    def test_verify_flags_alien_cache_version(self, tmp_path):
        store = ResultStore(str(tmp_path / "store"))
        digest = store.store(*CELL_A[:2], CELL_A[3], Stats(cycles=7))
        path = store.path_for(digest)
        with open(path, encoding="utf-8") as handle:
            entry = json.load(handle)
        entry["version"] = 999
        with open(path, "w", encoding="utf-8") as handle:
            json.dump(entry, handle)
        result = store.verify()
        assert [p.reason for p in result.problems] == [
            "cache version 999 (this build speaks %d)"
            % result_cache.CACHE_VERSION
        ]


# ----------------------------------------------------------------------
# Daemon faults, the journal, and resume
# ----------------------------------------------------------------------


class TestDaemonCrashRecovery:
    def test_submission_is_journalled_before_any_work_runs(self, tmp_path):
        service = _journalled_service(tmp_path)
        job_id = _submit(service)
        (job,) = service.journal.replay()
        assert job.job_id == job_id
        assert len(job.cells) == 2 and not job.finished

    def test_worker_exception_fails_cell_and_is_journalled(self, tmp_path):
        plan = FaultPlan.parse("worker-exception:1")
        service = _journalled_service(tmp_path, fault_plan=plan)
        job_id = _submit(service)
        service.process_queued()
        job = service.get_job(job_id)
        statuses = sorted(str(c["status"]) for c in job.cells.values())
        assert statuses == [protocol.STATUS_FAILED, protocol.STATUS_OK]
        assert service.counters["cells_failed"] == 1
        (replayed,) = service.journal.replay()
        assert replayed.finished
        failed = [r for r in replayed.resolved.values() if r[0] == protocol.STATUS_FAILED]
        assert failed and "FaultInjected" in failed[0][1]

    def _crash_then_resume(self, tmp_path, kind):
        engine = _StubEngine()
        plan = FaultPlan.parse("%s:1" % kind)
        service = _journalled_service(tmp_path, fault_plan=plan, engine=engine)
        job_id = _submit(service)
        with pytest.raises(DaemonCrash):
            service.process_queued()
        # The "process" died: no graceful shutdown, journal left as-is.
        resumed_engine = _StubEngine()
        resumed = _journalled_service(tmp_path, engine=resumed_engine)
        assert resumed.resume() == 1
        assert resumed.counters["jobs_resumed"] == 1
        resumed.process_queued()
        job = resumed.get_job(job_id)  # the pre-crash job id survives
        assert job.state == protocol.JOB_DONE
        assert all(
            c["status"] == protocol.STATUS_OK for c in job.cells.values()
        )
        return engine, resumed_engine, resumed

    def test_crash_before_publish_resimulates_on_resume(self, tmp_path):
        first, second, resumed = self._crash_then_resume(
            tmp_path, FAULT_CRASH_BEFORE_PUBLISH
        )
        # Nothing durable survived the crashed cell: it runs again.
        assert first.calls == 1 and second.calls == 2
        assert resumed.counters["cells_simulated"] == 2

    def test_crash_after_publish_serves_from_store_on_resume(self, tmp_path):
        first, second, resumed = self._crash_then_resume(
            tmp_path, FAULT_CRASH_AFTER_PUBLISH
        )
        # The store write was durable: resume serves it by content
        # address and only the untouched cell simulates.
        assert first.calls == 1 and second.calls == 1
        assert resumed.counters["cells_store"] == 1
        assert resumed.counters["cells_simulated"] == 1

    def test_resume_requeues_ok_cell_whose_entry_was_evicted(self, tmp_path):
        # The journal promises cell 0 is in the store, but an
        # aggressive GC (or a torn write) lost the entry: resume must
        # re-simulate it rather than serve nothing.
        store_root = str(tmp_path / "store")
        ResultStore(store_root)
        cells = _journal_cells()
        with JobJournal(resolve_journal_path(None, store_root)) as journal:
            journal.record_job("j000003", False, cells)
            journal.record_cell(
                "j000003", 0, cells[0].hash, protocol.STATUS_OK
            )
        resumed = _journalled_service(tmp_path, engine=_StubEngine())
        assert resumed.resume() == 1
        resumed.process_queued()
        job = resumed.get_job("j000003")
        assert job.state == protocol.JOB_DONE
        assert resumed.counters["cells_simulated"] == 2  # both re-ran

    def test_finished_and_cancelled_jobs_compact_away_on_resume(self, tmp_path):
        service = _journalled_service(tmp_path)
        done_id = _submit(service, cells=(CELL_B,))
        service.process_queued()
        cancelled_id = _submit(service, cells=(CELL_A,))
        service.cancel(cancelled_id)  # resolves its cells: finished
        resumed = _journalled_service(tmp_path, engine=_StubEngine())
        assert resumed.resume() == 0
        for job_id in (done_id, cancelled_id):
            with pytest.raises(ProtocolError):
                resumed.get_job(job_id)
        assert resumed.journal.replay() == []  # journal fully compacted

    def test_resume_completes_an_interrupted_cancellation(self, tmp_path):
        # The cancel record landed but the daemon died before writing
        # the per-cell resolutions: resume finishes the cancellation
        # instead of re-simulating cancelled work.
        store_root = str(tmp_path / "store")
        ResultStore(store_root)
        with JobJournal(resolve_journal_path(None, store_root)) as journal:
            journal.record_job("j000005", False, _journal_cells())
            journal.record_cancel("j000005")
        resumed = _journalled_service(tmp_path, engine=_StubEngine())
        assert resumed.resume() == 1
        job = resumed.get_job("j000005")
        assert job.state == protocol.JOB_CANCELLED
        assert all(
            c["status"] == protocol.STATUS_CANCELLED
            for c in job.cells.values()
        )
        assert resumed.counters["cells_simulated"] == 0

    def test_resume_job_ids_never_collide_with_new_submissions(self, tmp_path):
        service = _journalled_service(tmp_path)
        old_id = _submit(service)
        resumed = _journalled_service(tmp_path, engine=_StubEngine())
        resumed.resume()
        new_id = _submit(resumed, cells=(CELL_A,))
        assert new_id != old_id
        assert int(new_id.lstrip("j")) > int(old_id.lstrip("j"))

    def test_resume_without_journal_is_an_error(self, tmp_path):
        service = SweepService(
            ResultStore(str(tmp_path / "store")), workers=0, engine=_StubEngine()
        )
        with pytest.raises(ValueError, match="journal"):
            service.resume()

    def test_torn_store_write_reads_as_miss_and_converges(self, tmp_path):
        plan = FaultPlan.parse("torn-store-write:1")
        engine = _StubEngine()
        service = _journalled_service(tmp_path, fault_plan=plan, engine=engine)
        job_id = _submit(service, cells=(CELL_A,))
        service.process_queued()
        # The waiter still got its stats (they were in memory)...
        job = service.get_job(job_id)
        assert job.cells[0]["status"] == protocol.STATUS_OK
        # ...but the torn entry reads as a miss, so the next identical
        # submission re-simulates and heals the store.
        digest = cell_hash(*CELL_A[:2], CELL_A[3])
        assert service.store.get_entry(digest) is None
        _submit(service, cells=(CELL_A,))
        service.process_queued()
        assert engine.calls == 2
        assert service.store.get_entry(digest) is not None
        assert service.store.verify().examined == 1


class TestGracefulShutdown:
    def test_refuses_new_work_and_stamps_stopped_status(self, tmp_path):
        service = _journalled_service(tmp_path)
        job_id = _submit(service)  # workers=0: never finishes
        events = service.get_job(job_id).subscribe()
        service.shutdown_gracefully()
        job = service.get_job(job_id)
        assert job.state == protocol.JOB_STOPPED
        assert job.finished.is_set()
        # The open progress stream got a final terminal status line.
        last = None
        while not events.empty():
            last = events.get_nowait()
        assert last is not None
        assert last["type"] == protocol.MSG_STATUS
        assert last["state"] == protocol.JOB_STOPPED
        # And new submissions are turned away, with retry guidance.
        with pytest.raises(ProtocolError) as excinfo:
            _submit(service)
        assert excinfo.value.code == protocol.ERR_SHUTTING_DOWN
        assert excinfo.value.retry_after is not None

    def test_idempotent_and_closes_journal(self, tmp_path):
        service = _journalled_service(tmp_path)
        service.shutdown_gracefully()
        service.shutdown_gracefully()  # no double sentinel, no raise
        with pytest.raises(JournalError, match="closed"):
            service.journal.record_cancel("j1")

    def test_stopped_job_resumes_after_restart(self, tmp_path):
        service = _journalled_service(tmp_path)
        job_id = _submit(service)
        service.shutdown_gracefully()
        resumed = _journalled_service(tmp_path, engine=_StubEngine())
        resumed.resume()
        resumed.process_queued()
        assert resumed.get_job(job_id).state == protocol.JOB_DONE


# ----------------------------------------------------------------------
# HTTP fault matrix: byte-identical under every injected fault
# ----------------------------------------------------------------------


class TestHTTPFaultMatrix:
    @pytest.fixture()
    def inline_json(self):
        return Engine(backend="inline", cache_dir=None, memo={}).run(TINY).to_json()

    @pytest.mark.parametrize(
        "plan_text",
        [
            "drop-connection@jobs:1",
            "truncate-response@jobs:1",
            "drop-connection@result:1,truncate-response@health:1",
            "delayed-response@jobs:1x3",
        ],
    )
    def test_http_faults_retry_to_byte_identical_results(
        self, tmp_path, inline_json, plan_text
    ):
        plan = FaultPlan.parse(plan_text, delay=0.01)
        server, url = _serve(tmp_path, fault_plan=plan)
        try:
            result = Engine(server=url, cache_dir=None, memo={}).run(TINY)
            assert result.to_json() == inline_json
        finally:
            _stop(server)

    def test_torn_store_write_converges_across_runs(
        self, tmp_path, inline_json
    ):
        plan = FaultPlan.parse("torn-store-write:1")
        server, url = _serve(tmp_path, fault_plan=plan)
        try:
            first = Engine(server=url, cache_dir=None, memo={}).run(TINY)
            assert first.to_json() == inline_json
            # The torn entry reads as a miss: a cold client re-simulates
            # it remotely and still matches, and the store heals.
            second = Engine(server=url, cache_dir=None, memo={}).run(TINY)
            assert second.to_json() == inline_json
            assert server.service.store.verify().ok
        finally:
            _stop(server)

    def test_worker_fault_degrades_inline_and_publishes_back(
        self, tmp_path, inline_json
    ):
        plan = FaultPlan.parse("worker-exception:1")
        server, url = _serve(tmp_path, fault_plan=plan)
        try:
            events = []
            engine = Engine(
                server=url,
                cache_dir=None,
                memo={},
                fallback="inline",
                progress=events.append,
            )
            result = engine.run(TINY)
            assert result.to_json() == inline_json
            sources = sorted(e.source for e in events)
            assert protocol.SOURCE_FALLBACK in sources
            # Publish-back: the daemon's store converged on the full
            # matrix even though one of its own workers faulted.
            assert server.service.counters["cells_published"] == 1
            assert len(server.service.store) == 2
        finally:
            _stop(server)

    def test_dead_server_with_fallback_runs_inline(self, tmp_path, inline_json):
        events = []
        memo = {}
        engine = Engine(
            server=DEAD_URL,
            cache_dir=None,
            memo=memo,
            retries=0,
            fallback="inline",
            progress=events.append,
        )
        result = engine.run(TINY)
        assert result.to_json() == inline_json
        assert [e.source for e in events] == [protocol.SOURCE_FALLBACK] * 2
        assert all(not e.cached for e in events)
        # Retry exhaustion opened the breaker; the next cold run
        # degrades after cheap failed probes instead of re-paying the
        # whole retry schedule.
        assert engine.remote_client.breaker_open
        opens = []

        def probe_fails(*args, **kwargs):
            opens.append(args)
            raise OSError("down")

        engine.remote_client._open = probe_fails
        memo.clear()
        result_cache.clear()
        warm = engine.run(TINY)
        assert warm.to_json() == inline_json
        # Exactly two probes: the pre-flight breaker check and the
        # publish-back gate — no real requests, no retry sleeps.
        assert len(opens) == 2

    def test_dead_server_without_fallback_still_raises(self):
        engine = Engine(server=DEAD_URL, cache_dir=None, memo={}, retries=0)
        with pytest.raises(RemoteError):
            engine.run(TINY)

    def test_probe_closes_breaker_and_requests_resume(self, tmp_path):
        server, url = _serve(tmp_path)
        try:
            client = RemoteClient(url, retries=0)
            with client._lock:
                client._breaker_open = True
            with pytest.raises(RemoteError, match="circuit breaker"):
                client.health()
            assert client.probe() is True
            assert not client.breaker_open
            assert client.health()["type"] == protocol.MSG_STATUS
        finally:
            _stop(server)

    def test_shutting_down_daemon_degrades_to_inline(
        self, tmp_path, inline_json
    ):
        server, url = _serve(tmp_path)
        try:
            server.service.shutdown_gracefully()
            events = []
            engine = Engine(
                server=url,
                cache_dir=None,
                memo={},
                retries=0,
                fallback="inline",
                progress=events.append,
            )
            result = engine.run(TINY)
            assert result.to_json() == inline_json
            assert [e.source for e in events] == [protocol.SOURCE_FALLBACK] * 2
        finally:
            _stop(server)

    def test_engine_validates_fallback(self):
        with pytest.raises(ValueError, match="fallback"):
            Engine(server=DEAD_URL, fallback="carrier-pigeon")
        with pytest.raises(ValueError, match="fallback"):
            Engine(backend="inline", fallback="inline")


class TestPublishEndpoint:
    def test_publish_recomputes_addresses_and_counts(self, tmp_path):
        server, url = _serve(tmp_path)
        try:
            client = RemoteClient(url)
            stats = Engine(backend="inline", cache_dir=None, memo={}).run_cell(
                *CELL_A[:2], CELL_A[3]
            )
            ack = client.publish_cells([(CELL_A[0], CELL_A[1], CELL_A[3], stats)])
            assert ack["published"] == 1
            assert server.service.counters["cells_published"] == 1
            digest = cell_hash(*CELL_A[:2], CELL_A[3])
            looked_up = client.cell(digest)
            assert looked_up["hash"] == digest
        finally:
            _stop(server)

    def test_publish_rejects_poisoned_payload(self, tmp_path):
        server, url = _serve(tmp_path)
        try:
            stats = Stats(cycles=7)
            message = protocol.publish_message(
                [(CELL_A[0], CELL_A[1], CELL_A[3], stats)]
            )
            message["cells"][0]["hash"] = "0" * 64
            client = RemoteClient(url, retries=0)
            with pytest.raises(RemoteError) as excinfo:
                client._request("POST", "/v1/cells", message)
            assert excinfo.value.code == protocol.ERR_BAD_REQUEST
            assert len(server.service.store) == 0
        finally:
            _stop(server)


class TestHTTPGracefulShutdown:
    def test_open_stream_gets_final_stopped_status(self, tmp_path):
        # The events request is delayed by the fault plan, so it
        # subscribes *during* shutdown and must still replay a
        # terminal line instead of just dying.
        plan = FaultPlan.parse("delayed-response@events:1", delay=0.5)
        server, url = _serve(tmp_path, workers=0, fault_plan=plan)
        lines = []
        failures = []

        def follow(job_id):
            try:
                for event in RemoteClient(url).events(job_id):
                    lines.append(event)
            except RemoteError as exc:
                failures.append(exc)

        try:
            client = RemoteClient(url)
            ack = client.submit([CELL_A, CELL_B])
            thread = threading.Thread(
                target=follow, args=(str(ack["job"]),), daemon=True
            )
            thread.start()
            time.sleep(0.15)  # the stream request is in flight (delayed)
        finally:
            _stop(server)
        thread.join(timeout=5.0)
        assert not thread.is_alive()
        assert not failures
        assert lines, "stream died without a final status"
        assert lines[-1]["type"] == protocol.MSG_STATUS
        assert lines[-1]["state"] == protocol.JOB_STOPPED

    def test_submit_during_shutdown_is_typed_503(self, tmp_path):
        server, url = _serve(tmp_path)
        try:
            server.service.shutdown_gracefully()
            client = RemoteClient(url, retries=0)
            with pytest.raises(RemoteError, match="shutting down"):
                client.submit([CELL_A])
        finally:
            _stop(server)


# ----------------------------------------------------------------------
# Retry-After hardening (client side)
# ----------------------------------------------------------------------


class TestRetryAfterBounds:
    def _client_with_429(self, retry_after):
        import io
        import urllib.error

        delays = []
        client = RemoteClient(
            "http://127.0.0.1:9", retries=1, backoff=0.25, sleep=delays.append
        )
        body = protocol.encode(
            {
                "v": protocol.PROTOCOL_VERSION,
                "type": protocol.MSG_ERROR,
                "code": protocol.ERR_QUEUE_FULL,
                "message": "busy",
                "retry_after": retry_after,
            }
        )

        def _always_429(method, path, message=None):
            raise urllib.error.HTTPError(
                "http://127.0.0.1:9" + path, 429, "busy", {}, io.BytesIO(body)
            )

        client._open = _always_429
        return client, delays

    @pytest.mark.parametrize(
        "retry_after,expected",
        [
            (2.5, [2.5]),  # honoured
            (60, [10.0]),  # capped at the backoff ceiling
            (True, [0.25]),  # bool is an int subclass: ignored
            (-5, [0.25]),  # negative: ignored
            ("soon", [0.25]),  # non-numeric: ignored
        ],
    )
    def test_retry_after_bounds(self, retry_after, expected):
        client, delays = self._client_with_429(retry_after)
        with pytest.raises(RemoteError, match="busy"):
            client.health()
        assert delays == expected

    def test_exhaustion_opens_breaker(self):
        client, _ = self._client_with_429(0.0)
        with pytest.raises(RemoteError):
            client.health()
        assert client.breaker_open
        with pytest.raises(RemoteError, match="circuit breaker"):
            client.health()


# ----------------------------------------------------------------------
# CLI plumbing
# ----------------------------------------------------------------------


class TestCLI:
    def test_store_info_gc_verify(self, tmp_path, capsys):
        from repro.cli import main

        root = str(tmp_path / "store")
        store = ResultStore(root)
        store.store(*CELL_A[:2], CELL_A[3], Stats(cycles=7))
        store.store(*CELL_B[:2], CELL_B[3], Stats(cycles=7))
        assert main(["store", "info", "--dir", root]) == 0
        assert "2 entries" in capsys.readouterr().out
        assert main(["store", "verify", "--dir", root]) == 0
        assert "2 entries: 0 bad" in capsys.readouterr().out
        assert (
            main(["store", "gc", "--dir", root, "--max-entries", "1", "--dry-run"])
            == 0
        )
        assert "would evict 1 of 2" in capsys.readouterr().out
        assert main(["store", "gc", "--dir", root, "--max-entries", "1"]) == 0
        assert "evicted 1 of 2" in capsys.readouterr().out
        assert len(store) == 1

    def test_store_verify_exits_nonzero_on_problems(self, tmp_path, capsys):
        from repro.cli import main

        root = str(tmp_path / "store")
        store = ResultStore(root)
        digest = store.store(*CELL_A[:2], CELL_A[3], Stats(cycles=7))
        path = store.path_for(digest)
        with open(path, "w", encoding="utf-8") as handle:
            handle.write("{torn")
        assert main(["store", "verify", "--dir", root]) == 1
        captured = capsys.readouterr()
        assert "1 bad" in captured.out
        assert "torn" in captured.err

    def test_serve_rejects_plan_and_seed_together(self, capsys):
        from repro.cli import main

        code = main(
            ["serve", "--fault-plan", "drop-connection", "--fault-seed", "1"]
        )
        assert code == 2
        assert "mutually exclusive" in capsys.readouterr().err

    def test_bad_fault_plan_is_a_clean_cli_error(self, capsys):
        from repro.cli import main

        assert main(["serve", "--fault-plan", "no-such-kind"]) == 2
        assert "unknown fault kind" in capsys.readouterr().err

    def test_fallback_accounting_line(self, tmp_path, capsys):
        from repro.cli import main

        code = main(
            [
                "sweep",
                "--workloads",
                "histogram",
                "--configs",
                "baseline",
                "--size",
                "tiny",
                "--server",
                DEAD_URL,
                "--retries",
                "0",
                "--fallback",
                "inline",
                "--cache-dir",
                str(tmp_path / "cache"),
            ]
        )
        assert code == 0
        err = capsys.readouterr().err
        assert "# 1 cells: 1 simulated, 0 cached (1 fallback)" in err
