"""The analysis/experiments harness used by the benchmark tree."""

import os

import pytest

from repro.analysis import experiments
from repro.core import presets


class TestRunOne:
    def test_runs_and_caches(self):
        cfg = presets.baseline()
        first = experiments.run_one("histogram", cfg, "tiny")
        second = experiments.run_one("histogram", cfg, "tiny")
        assert first is second  # cache hit

    def test_cache_keyed_by_config(self):
        a = experiments.run_one("histogram", presets.baseline(), "tiny")
        b = experiments.run_one("histogram", presets.warp64(), "tiny")
        assert a is not b

    def test_no_cache(self):
        cfg = presets.baseline()
        a = experiments.run_one("histogram", cfg, "tiny", cache=False)
        b = experiments.run_one("histogram", cfg, "tiny", cache=False)
        assert a is not b
        assert a.cycles == b.cycles  # deterministic

    def test_verify_flag(self):
        experiments.run_one(
            "histogram", presets.baseline(), "tiny", verify=True, cache=False
        )

    def test_config_key_distinguishes_options(self):
        keys = {
            experiments.config_key(presets.swi()),
            experiments.config_key(presets.swi(ways=3)),
            experiments.config_key(presets.swi(lane_shuffle="xor")),
            experiments.config_key(presets.sbi(constraints=False)),
        }
        assert len(keys) == 4


class TestSuiteHelpers:
    def test_run_suite_shape(self):
        results = experiments.run_suite(
            {"baseline": presets.baseline()}, ["histogram"], "tiny"
        )
        assert set(results) == {"histogram"}
        assert set(results["histogram"]) == {"baseline"}

    def test_ipc_table(self):
        results = experiments.run_suite(
            {"baseline": presets.baseline()}, ["histogram"], "tiny"
        )
        table = experiments.suite_ipc_table(results)
        assert table["histogram"]["baseline"] > 0

    def test_included_excludes_tmd(self):
        names = experiments.included(["bfs", "tmd1", "tmd2", "lud"])
        assert names == ["bfs", "lud"]

    def test_figure7_configs_complete(self):
        cfgs = experiments.figure7_configs()
        assert set(cfgs) == {"baseline", "sbi", "swi", "sbi_swi", "warp64"}

    def test_save_results(self, tmp_path):
        path = os.path.join(str(tmp_path), "sub", "out.json")
        experiments.save_results(path, {"a": {"b": 1.0}})
        assert os.path.exists(path)

    def test_determinism_across_instances(self):
        """Two fresh runs of the same cell give identical cycle counts —
        the simulator has no hidden global state."""
        cfg = presets.sbi_swi()
        a = experiments.run_one("sortingnetworks", cfg, "tiny", cache=False)
        b = experiments.run_one("sortingnetworks", cfg, "tiny", cache=False)
        assert (a.cycles, a.thread_instructions, a.instructions_issued) == (
            b.cycles,
            b.thread_instructions,
            b.instructions_issued,
        )
