"""The deprecated analysis/experiments shim (kept source-compatible)."""

import multiprocessing
import os
import warnings

import pytest

with warnings.catch_warnings():
    warnings.simplefilter("ignore", DeprecationWarning)
    from repro.analysis import experiments

from repro.core import presets
from repro.timing.config import GPUConfig
from repro.timing.stats import DeviceStats


class TestDeprecation:
    def test_import_emits_deprecation_warning(self):
        import importlib

        with warnings.catch_warnings(record=True) as caught:
            warnings.simplefilter("always")
            importlib.reload(experiments)
        assert any(
            issubclass(w.category, DeprecationWarning)
            and "repro.api" in str(w.message)
            for w in caught
        )


class TestLegacyParity:
    """The shim must return exactly what the API returns."""

    def test_run_suite_matches_engine(self):
        from repro.api import Engine, SweepSpec

        spec = SweepSpec.from_presets(
            ["baseline", "warp64"],
            workloads=["histogram", "sortingnetworks"],
            size="tiny",
        )
        rs = Engine().run(spec)
        legacy = experiments.run_suite(dict(spec.configs), list(spec.workloads), "tiny")
        assert rs.ipc_table() == experiments.suite_ipc_table(legacy)
        assert rs.nested() == legacy  # memoised: identical objects

    def test_figure7_table_matches_engine(self):
        """Full smoke grid through both surfaces (the second pass is
        free: both share one in-process memo)."""
        from repro.api import Engine, SweepSpec

        rs = Engine().run(SweepSpec.figure7(size="smoke"))
        legacy = experiments.figure7_table(size="smoke")
        assert rs.ipc_table() == legacy


class TestRunOne:
    def test_runs_and_caches(self):
        cfg = presets.baseline()
        first = experiments.run_one("histogram", cfg, "tiny")
        second = experiments.run_one("histogram", cfg, "tiny")
        assert first is second  # cache hit

    def test_cache_keyed_by_config(self):
        a = experiments.run_one("histogram", presets.baseline(), "tiny")
        b = experiments.run_one("histogram", presets.warp64(), "tiny")
        assert a is not b

    def test_no_cache(self):
        cfg = presets.baseline()
        a = experiments.run_one("histogram", cfg, "tiny", cache=False)
        b = experiments.run_one("histogram", cfg, "tiny", cache=False)
        assert a is not b
        assert a.cycles == b.cycles  # deterministic

    def test_verify_flag(self):
        experiments.run_one(
            "histogram", presets.baseline(), "tiny", verify=True, cache=False
        )

    def test_verify_bypasses_warm_cache(self, monkeypatch):
        """verify=True must simulate and check even when the cell is
        already in the in-process cache."""
        cfg = presets.baseline()
        experiments.run_one("histogram", cfg, "tiny")  # warm the cache
        calls = []
        real = experiments.get_workload

        def spy(name, size):
            inst = real(name, size)
            if inst.numpy_check is not None:
                check = inst.numpy_check
                inst.numpy_check = lambda mem: (calls.append(name), check(mem))
            return inst

        monkeypatch.setattr(experiments, "get_workload", spy)
        experiments.run_one("histogram", cfg, "tiny", verify=True)
        assert calls == ["histogram"]

    def test_config_key_distinguishes_options(self):
        keys = {
            experiments.config_key(presets.swi()),
            experiments.config_key(presets.swi(ways=3)),
            experiments.config_key(presets.swi(lane_shuffle="xor")),
            experiments.config_key(presets.sbi(constraints=False)),
        }
        assert len(keys) == 4

    def test_config_key_covers_every_field(self):
        """Sweeps over scoreboard/CCT/L1/DRAM knobs must not collide
        (the original key ignored them and served stale Stats)."""
        variants = [
            presets.baseline(),
            presets.baseline(scoreboard_kind="mask"),
            presets.baseline(scoreboard_entries=8),
            presets.sbi(),
            presets.sbi(cct_capacity=4),
            presets.sbi(cct_insert_delay=1),
            presets.baseline(l1_size=16 * 1024),
            presets.baseline(l1_ways=2, l1_size=16 * 1024),
            presets.baseline(dram_bandwidth=20.0),
            presets.baseline(dram_latency=100),
        ]
        keys = {experiments.config_key(c) for c in variants}
        assert len(keys) == len(variants)

    def test_config_key_distinguishes_gpu_configs(self):
        keys = {
            experiments.config_key(presets.baseline()),
            experiments.config_key(GPUConfig(sm=presets.baseline())),
            experiments.config_key(GPUConfig(sm=presets.baseline(), sm_count=2)),
            experiments.config_key(presets.device("baseline")),
            experiments.config_key(presets.device("baseline", dram_partitions=2)),
        }
        assert len(keys) == 5

    def test_config_hash_stable_and_field_sensitive(self):
        a = experiments.config_hash(presets.baseline())
        assert a == experiments.config_hash(presets.baseline())
        assert a != experiments.config_hash(presets.baseline(dram_latency=100))


class TestSuiteHelpers:
    def test_run_suite_shape(self):
        results = experiments.run_suite(
            {"baseline": presets.baseline()}, ["histogram"], "tiny"
        )
        assert set(results) == {"histogram"}
        assert set(results["histogram"]) == {"baseline"}

    def test_ipc_table(self):
        results = experiments.run_suite(
            {"baseline": presets.baseline()}, ["histogram"], "tiny"
        )
        table = experiments.suite_ipc_table(results)
        assert table["histogram"]["baseline"] > 0

    def test_included_excludes_tmd(self):
        names = experiments.included(["bfs", "tmd1", "tmd2", "lud"])
        assert names == ["bfs", "lud"]

    def test_figure7_configs_complete(self):
        cfgs = experiments.figure7_configs()
        assert set(cfgs) == {"baseline", "sbi", "swi", "sbi_swi", "warp64"}

    def test_save_results(self, tmp_path):
        path = os.path.join(str(tmp_path), "sub", "out.json")
        experiments.save_results(path, {"a": {"b": 1.0}})
        assert os.path.exists(path)

    def test_save_results_bare_filename(self, tmp_path, monkeypatch):
        """A path with no directory component must not crash makedirs."""
        monkeypatch.chdir(tmp_path)
        experiments.save_results("out.json", {"a": {"b": 1.0}})
        assert os.path.exists("out.json")

    def test_determinism_across_instances(self):
        """Two fresh runs of the same cell give identical cycle counts —
        the simulator has no hidden global state."""
        cfg = presets.sbi_swi()
        a = experiments.run_one("sortingnetworks", cfg, "tiny", cache=False)
        b = experiments.run_one("sortingnetworks", cfg, "tiny", cache=False)
        assert (a.cycles, a.thread_instructions, a.instructions_issued) == (
            b.cycles,
            b.thread_instructions,
            b.instructions_issued,
        )


class TestDiskCache:
    @pytest.fixture(autouse=True)
    def fresh_process_cache(self):
        """Disk-cache behaviour must not depend on what earlier tests
        left in the in-process cache."""
        experiments.clear_cache()
        yield
        experiments.clear_cache()

    def test_warm_cache_skips_simulation(self, tmp_path, monkeypatch):
        cache_dir = str(tmp_path)
        cfg = presets.baseline()
        first = experiments.run_one("histogram", cfg, "tiny", cache_dir=cache_dir)
        experiments.clear_cache()

        def boom(*args, **kwargs):
            raise AssertionError("simulation re-ran despite warm disk cache")

        monkeypatch.setattr(experiments, "simulate", boom)
        monkeypatch.setattr(experiments, "simulate_device", boom)
        second = experiments.run_one("histogram", cfg, "tiny", cache_dir=cache_dir)
        assert first.to_dict() == second.to_dict()

    def test_disk_key_distinguishes_configs(self, tmp_path):
        cache_dir = str(tmp_path)
        a = experiments.run_one(
            "histogram", presets.baseline(), "tiny", cache_dir=cache_dir
        )
        experiments.clear_cache()
        b = experiments.run_one(
            "histogram",
            presets.baseline(scoreboard_kind="mask"),
            "tiny",
            cache_dir=cache_dir,
        )
        assert len(os.listdir(cache_dir)) == 2
        assert a.cycles != 0 and b.cycles != 0

    def test_device_stats_round_trip(self, tmp_path, monkeypatch):
        cache_dir = str(tmp_path)
        cfg = presets.device("baseline", sm_count=2)
        first = experiments.run_one("histogram", cfg, "tiny", cache_dir=cache_dir)
        assert isinstance(first, DeviceStats)
        experiments.clear_cache()
        monkeypatch.setattr(
            experiments, "simulate_device", lambda *a, **k: pytest.fail("re-ran")
        )
        second = experiments.run_one("histogram", cfg, "tiny", cache_dir=cache_dir)
        assert isinstance(second, DeviceStats)
        assert second.to_dict() == first.to_dict()

    def test_env_var_names_cache_dir(self, tmp_path, monkeypatch):
        monkeypatch.setenv(experiments.CACHE_DIR_ENV, str(tmp_path))
        experiments.clear_cache()
        experiments.run_one("histogram", presets.baseline(), "tiny")
        assert os.listdir(str(tmp_path))

    def test_corrupt_entry_falls_back_to_simulation(self, tmp_path):
        cache_dir = str(tmp_path)
        cfg = presets.baseline()
        experiments.run_one("histogram", cfg, "tiny", cache_dir=cache_dir)
        (entry,) = os.listdir(cache_dir)
        with open(os.path.join(cache_dir, entry), "w") as f:
            f.write("{not json")
        experiments.clear_cache()
        stats = experiments.run_one("histogram", cfg, "tiny", cache_dir=cache_dir)
        assert stats.cycles > 0


class TestParallelSuite:
    @pytest.fixture(autouse=True)
    def fresh_process_cache(self):
        experiments.clear_cache()
        yield
        experiments.clear_cache()

    def _configs(self):
        return {"baseline": presets.baseline(), "warp64": presets.warp64()}

    def test_parallel_matches_sequential(self, tmp_path):
        experiments.clear_cache()
        par = experiments.run_suite(
            self._configs(),
            ["histogram", "sortingnetworks"],
            "tiny",
            jobs=2,
            cache_dir=str(tmp_path),
        )
        experiments.clear_cache()
        seq = experiments.run_suite(
            self._configs(), ["histogram", "sortingnetworks"], "tiny"
        )
        assert experiments.suite_ipc_table(par) == experiments.suite_ipc_table(seq)

    @pytest.mark.skipif(
        multiprocessing.get_start_method() != "fork",
        reason="the monkeypatched simulate only propagates to forked workers",
    )
    def test_parallel_with_warm_disk_cache_never_simulates(
        self, tmp_path, monkeypatch
    ):
        cache_dir = str(tmp_path)
        experiments.run_suite(
            self._configs(), ["histogram"], "tiny", jobs=2, cache_dir=cache_dir
        )
        experiments.clear_cache()

        def boom(*args, **kwargs):
            raise AssertionError("simulation re-ran despite warm disk cache")

        # Affects the workers too: ProcessPoolExecutor forks this process.
        monkeypatch.setattr(experiments, "simulate", boom)
        monkeypatch.setattr(experiments, "simulate_device", boom)
        table = experiments.run_suite(
            self._configs(), ["histogram"], "tiny", jobs=2, cache_dir=cache_dir
        )
        assert set(table["histogram"]) == {"baseline", "warp64"}

    def test_parallel_results_fold_into_process_cache(self, tmp_path):
        experiments.clear_cache()
        experiments.run_suite(
            self._configs(), ["histogram"], "tiny", jobs=2, cache_dir=str(tmp_path)
        )
        key = ("histogram", "tiny", experiments.config_key(presets.baseline()))
        assert key in experiments._CACHE

    def test_device_cells_in_suite(self):
        experiments.clear_cache()
        configs = {
            "sm": presets.baseline(),
            "device2": presets.device("baseline", sm_count=2),
        }
        table = experiments.run_suite(configs, ["histogram"], "tiny")
        assert table["histogram"]["sm"].ipc > 0
        assert table["histogram"]["device2"].ipc > 0
