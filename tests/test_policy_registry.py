"""The pluggable policy API: registries, aliasing, observers, goldens.

The heavyweight acceptance test here is :class:`TestGoldenEquivalence`:
every built-in mode, resolved through the registry, must reproduce the
pre-refactor simulator bit-for-bit (stats SHA) and key the disk cache
identically, over all 21 workloads at smoke size
(``tests/data/golden_smoke.json`` was captured from the simulator
before the policy registry existed).
"""

import hashlib
import json
import os

import pytest

from repro.api.cache import cell_hash, config_key
from repro.core import presets
from repro.core.policy import (
    DIVERGENCE,
    OBSERVERS,
    POLICIES,
    SCHEDULERS,
    DuplicateNameError,
    EventCounter,
    PolicyLookupError,
    PolicySpec,
    Registry,
    coerce_policy,
    register_policy,
)
from repro.core.simulator import simulate
from repro.timing.config import SMConfig
from repro.workloads import ALL_WORKLOADS, get_workload

GOLDEN = os.path.join(os.path.dirname(__file__), "data", "golden_smoke.json")


@pytest.fixture
def scratch_names():
    """Unregister any names a test registered, even on failure."""
    names = []
    yield names
    for registry, name in names:
        registry.unregister(name)


class TestRegistry:
    def test_duplicate_registration_rejected(self, scratch_names):
        reg = Registry("thing")
        reg.register("a", 1)
        with pytest.raises(DuplicateNameError, match="already registered"):
            reg.register("a", 2)
        assert reg.get("a") == 1
        reg.register("a", 2, replace=True)
        assert reg.get("a") == 2

    def test_same_object_reregistration_is_noop(self):
        reg = Registry("thing")
        obj = object()
        reg.register("a", obj)
        reg.register("a", obj)  # module reload pattern: no error
        assert reg.get("a") is obj

    def test_unknown_name_lists_registered(self):
        with pytest.raises(PolicyLookupError, match="baseline.*sbi_swi"):
            POLICIES.get("nope")
        with pytest.raises(PolicyLookupError, match="unknown scheduler"):
            SCHEDULERS.get("nope")

    def test_decorator_registration(self, scratch_names):
        @OBSERVERS.register("scratch_observer")
        class Scratch(EventCounter):
            pass

        scratch_names.append((OBSERVERS, "scratch_observer"))
        assert OBSERVERS.get("scratch_observer") is Scratch

    def test_builtin_catalogue(self):
        assert set(presets.FIGURE7_CONFIGS) <= set(POLICIES.names())
        for name in ("swi_greedy", "swi_rr", "dwr"):
            assert name in POLICIES
        for name in ("stack", "frontier", "sbi_heap", "dwr"):
            assert name in DIVERGENCE


class TestModeResolution:
    def test_modes_resolve_to_original_classes(self):
        from repro.core import schedulers as sched
        from repro.core.sm import StreamingMultiprocessor

        expected = {
            "baseline": sched.BaselineScheduler,
            "warp64": sched.Warp64Scheduler,
            "sbi": sched.SBIScheduler,
            "swi": sched.CascadedScheduler,
            "sbi_swi": sched.CascadedScheduler,
            "swi_greedy": sched.GreedyCascadedScheduler,
            "swi_rr": sched.LooseRoundRobinScheduler,
            "dwr": sched.CascadedScheduler,
        }
        for mode, klass in expected.items():
            inst = get_workload("histogram", "tiny")
            sm = StreamingMultiprocessor(
                inst.kernel, inst.memory, presets.by_name(mode)
            )
            assert type(sm.scheduler) is klass

    def test_divergence_models_resolve(self):
        from repro.core.warp import make_divergence_model
        from repro.timing.dwr import DWRModel
        from repro.timing.frontier import FrontierModel
        from repro.timing.hct import SBIModel
        from repro.timing.stack import StackModel

        perm = list(range(64))
        expected = {
            "baseline": StackModel,
            "warp64": FrontierModel,
            "sbi": SBIModel,
            "swi": FrontierModel,
            "sbi_swi": SBIModel,
            "dwr": DWRModel,
        }
        for mode, klass in expected.items():
            cfg = presets.by_name(mode)
            perm = list(range(cfg.warp_width))
            model = make_divergence_model(cfg, (1 << cfg.warp_width) - 1, perm)
            assert type(model) is klass

    def test_spec_alias_produces_identical_config_and_cache_keys(self):
        for mode in presets.FIGURE7_CONFIGS:
            spec = POLICIES.get(mode)
            by_string = presets.by_name(mode)
            by_spec = presets.from_policy(mode).replace(mode=spec)
            assert by_spec.mode == mode  # normalised back to the string
            assert by_spec == by_string
            assert config_key(by_spec) == config_key(by_string)
            assert cell_hash("bfs", "tiny", by_spec) == cell_hash(
                "bfs", "tiny", by_string
            )

    def test_unregistered_spec_autoregisters(self, scratch_names):
        spec = PolicySpec(
            name="scratch_mode",
            scheduler="single_issue",
            divergence="frontier",
            issue_width=1,
        )
        scratch_names.append((POLICIES, "scratch_mode"))
        cfg = SMConfig(mode=spec, warp_count=16, warp_width=64)
        assert cfg.mode == "scratch_mode"
        assert POLICIES.get("scratch_mode") == spec
        assert cfg.policy is POLICIES.get("scratch_mode")

    def test_conflicting_spec_name_rejected(self):
        clash = PolicySpec(name="baseline", scheduler="single_issue",
                           divergence="frontier", issue_width=1)
        with pytest.raises(DuplicateNameError, match="different spec"):
            coerce_policy(clash)

    def test_unknown_mode_string_raises_with_catalogue(self):
        with pytest.raises(PolicyLookupError, match="baseline"):
            SMConfig(mode="not_a_policy")

    def test_typoed_preset_field_rejected_at_registration(self):
        with pytest.raises(ValueError, match="warp_cnt"):
            PolicySpec(
                name="scratch_typo",
                scheduler="single_issue",
                divergence="frontier",
                issue_width=1,
                preset=dict(warp_cnt=16),
            )
        with pytest.raises(ValueError, match="implied by the spec name"):
            PolicySpec(
                name="scratch_mode_key",
                scheduler="single_issue",
                divergence="frontier",
                issue_width=1,
                preset=dict(mode="baseline"),
            )


class TestCustomPolicyEndToEnd:
    def test_custom_scheduler_policy_runs(self, scratch_names):
        from repro.core.schedulers import CascadedScheduler
        from repro.core.sm import StreamingMultiprocessor
        from repro.functional.memory import MemoryImage
        from repro.isa.builder import KernelBuilder
        from repro.isa.instructions import CmpOp

        @SCHEDULERS.register("scratch_narrowest")
        class NarrowestFirst(CascadedScheduler):
            def _secondary_key(self, warp, split, entry):
                return (-split.active_threads, -entry.fetch_cycle)

        scratch_names.append((SCHEDULERS, "scratch_narrowest"))
        register_policy(
            PolicySpec(
                name="scratch_swi",
                scheduler="scratch_narrowest",
                divergence="frontier",
                uses_swi=True,
                unit_bound_peak=True,
                preset=dict(
                    warp_count=16, warp_width=64, scheduler_latency=2,
                    delivery_latency=1, lane_shuffle="xor_rev",
                ),
            )
        )
        scratch_names.append((POLICIES, "scratch_swi"))
        config = presets.by_name("scratch_swi")

        # Imbalanced per-thread trip counts: the SWI-favourite shape
        # (same kernel as test_schedulers uses for lane filling).
        kb = KernelBuilder("imb")
        t, p, v, c, a = kb.regs("t", "p", "v", "c", "a")
        kb.mov(t, kb.tid)
        kb.mad(t, kb.ctaid, kb.ntid, t)
        kb.and_(c, t, 7)
        kb.mov(v, 0.0)
        kb.label("loop")
        kb.mad(v, v, 3, 1)
        kb.sub(c, c, 1)
        kb.setp(p, CmpOp.GE, c, 0)
        kb.bra("loop", cond=p)
        kb.mul(a, t, 4)
        kb.st(kb.param(0), v, index=a)
        kb.exit_()
        mem = MemoryImage()
        out = mem.alloc(1024 * 4)
        kernel = kb.build(cta_size=256, grid_size=4, params=(out,))
        sm = StreamingMultiprocessor(kernel, mem, config)
        assert type(sm.scheduler) is NarrowestFirst
        stats = sm.run()
        assert stats.ipc > 0
        assert stats.issued_swi_secondary > 0

    def test_custom_policy_sweepable(self, scratch_names):
        from repro.api import Engine, SweepSpec

        register_policy(
            PolicySpec(
                name="scratch_w64",
                scheduler="single_issue",
                divergence="frontier",
                issue_width=1,
                preset=dict(warp_count=16, warp_width=64),
            )
        )
        scratch_names.append((POLICIES, "scratch_w64"))
        spec = SweepSpec(
            workloads=["histogram"], configs=["baseline"], sizes="tiny"
        ).with_policies(["scratch_w64", "warp64"])
        rs = Engine().run(spec)
        assert len(rs) == 2
        table = rs.ipc_table()["histogram"]
        # scratch_w64 is warp64's machine under a new name: same IPC.
        assert (
            table["baseline/policy=scratch_w64"] == table["baseline/policy=warp64"]
        )


class TestObserverEvents:
    def _run_counted(self, mode="sbi_swi"):
        counter = EventCounter()
        inst = get_workload("mandelbrot", "tiny")
        stats = simulate(
            inst.kernel, inst.memory, presets.by_name(mode), observers=[counter]
        )
        return stats, counter

    def test_event_counts_match_stats(self):
        stats, counter = self._run_counted()
        assert counter.counts["issue"] == stats.instructions_issued
        assert counter.counts["retire"] == stats.warps_retired
        assert counter.counts["split"] == stats.divergent_branches
        assert counter.counts.get("l1_miss", 0) == stats.l1_misses

    def test_event_ordering(self):
        stats, counter = self._run_counted()
        cycles = [cycle for _, cycle in counter.sequence]
        assert cycles == sorted(cycles)  # nondecreasing event time
        first_issue = next(
            i for i, (kind, _) in enumerate(counter.sequence) if kind == "issue"
        )
        first_retire = next(
            i for i, (kind, _) in enumerate(counter.sequence) if kind == "retire"
        )
        assert first_issue < first_retire  # a warp issues before retiring

    def test_observers_do_not_change_timing(self):
        inst = get_workload("mandelbrot", "tiny")
        plain = simulate(inst.kernel, inst.memory, presets.sbi_swi())
        observed, _ = self._run_counted()
        assert observed.to_dict() == plain.to_dict()

    def test_device_l2_miss_events(self):
        from repro.core.gpu import simulate_device

        counter = EventCounter()
        inst = get_workload("histogram", "tiny")
        dstats = simulate_device(
            inst.kernel,
            inst.memory,
            presets.device("baseline", sm_count=2),
            observers=[counter],
        )
        assert counter.counts.get("l2_miss", 0) == dstats.l2_misses

    def test_issue_trace_observer_matches_legacy_trace(self):
        from repro.analysis.pipeline_trace import trace_kernel
        from repro.core.sm import StreamingMultiprocessor

        inst = get_workload("histogram", "tiny")
        stats, events = trace_kernel(inst.kernel, inst.memory, presets.baseline())
        inst2 = get_workload("histogram", "tiny")
        sm = StreamingMultiprocessor(inst2.kernel, inst2.memory, presets.baseline())
        sm.trace = []
        sm.run()
        assert events == sm.trace
        assert len(events) == stats.instructions_issued


class TestGoldenEquivalence:
    """Registry-resolved modes are cycle-exact vs the pre-refactor
    simulator and produce identical disk-cache keys (all 21 workloads,
    smoke size, all five paper modes)."""

    @pytest.mark.parametrize("mode", presets.FIGURE7_CONFIGS)
    def test_mode_matches_golden(self, mode):
        with open(GOLDEN) as f:
            golden = json.load(f)["cells"]
        config = presets.by_name(mode)
        for workload in ALL_WORKLOADS:
            expected = golden["%s/%s" % (workload, mode)]
            assert expected["cell_hash"] == cell_hash(workload, "tiny", config)
            inst = get_workload(workload, "smoke")
            stats = simulate(inst.kernel, inst.memory, config)
            assert stats.cycles == expected["cycles"], workload
            assert stats.thread_instructions == expected["thread_instructions"]
            assert stats.instructions_issued == expected["instructions_issued"]
            sha = hashlib.sha256(
                json.dumps(stats.to_dict(), sort_keys=True).encode()
            ).hexdigest()
            assert sha == expected["stats_sha"], workload
