"""The reproduction's central invariant: scheduling never changes
semantics.

Randomly generated kernels with nested data-dependent control flow,
loops, barriers and memory traffic must leave global memory in exactly
the state the reference interpreter produces — under every scheduler
mode (baseline stack, Warp64 frontier, SBI, SWI, SBI+SWI), every lane
shuffle, and with constraints on or off.
"""

import numpy as np
import pytest
from hypothesis import given, settings, HealthCheck
from hypothesis import strategies as st

from repro.core import presets
from repro.core.simulator import simulate
from repro.functional.interp import run_kernel
from repro.functional.memory import MemoryImage
from repro.isa.builder import KernelBuilder
from repro.isa.instructions import CmpOp

N_THREADS = 64
CTA = 32


def _emit_body(kb, draw, regs, depth):
    """Emit a random structured body mutating register ``v``."""
    v, t, p, c, tmp = regs
    n_items = draw(st.integers(1, 3))
    for _ in range(n_items):
        kind = draw(
            st.sampled_from(
                ["arith", "arith", "ifelse", "loop"] if depth < 2 else ["arith"]
            )
        )
        if kind == "arith":
            op = draw(st.sampled_from(["mad", "add", "xor_t", "mul"]))
            if op == "mad":
                kb.mad(v, v, 3, 1)
            elif op == "add":
                kb.add(v, v, t)
            elif op == "xor_t":
                kb.xor(tmp, t, draw(st.integers(0, 7)))
                kb.add(v, v, tmp)
            else:
                kb.mul(v, v, 2)
        elif kind == "ifelse":
            bit = draw(st.integers(0, 4))
            has_else = draw(st.booleans())
            else_l = kb.label_name = "L%d" % id(object())  # unique
            else_l = kb._labels and None  # noqa: appease linters
            lbl_else = "e%d" % kb._label_counter
            lbl_join = "j%d" % (kb._label_counter + 1)
            kb._label_counter += 2
            kb.shr(tmp, t, bit)
            kb.and_(tmp, tmp, 1)
            kb.bra(lbl_else, cond=tmp)
            _emit_body(kb, draw, regs, depth + 1)
            if has_else:
                kb.bra(lbl_join)
                kb.label(lbl_else)
                _emit_body(kb, draw, regs, depth + 1)
                kb.label(lbl_join)
            else:
                kb.label(lbl_else)
        else:  # loop with data-dependent trip count
            lbl = "lp%d" % kb._label_counter
            kb._label_counter += 1
            kb.and_(c, t, draw(st.integers(1, 3)))
            kb.add(c, c, 1)
            kb.label(lbl)
            _emit_body(kb, draw, regs, depth + 2)
            kb.sub(c, c, 1)
            kb.setp(p, CmpOp.GT, c, 0)
            kb.bra(lbl, cond=p)


@st.composite
def kernels(draw):
    kb = KernelBuilder("hyp", nregs=12)
    regs = kb.regs("v", "t", "p", "c", "tmp")
    v, t, p, c, tmp = regs
    addr = kb.reg("addr")
    kb.mov(t, kb.tid)
    kb.mad(t, kb.ctaid, kb.ntid, t)
    kb.mov(v, 1.0)
    with_bar = draw(st.booleans())
    _emit_body(kb, draw, regs, 0)
    if with_bar:
        kb.bar()
        _emit_body(kb, draw, regs, 1)
    kb.and_(tmp, v, (1 << 30) - 1)  # keep values integer-exact
    kb.mul(addr, t, 4)
    kb.st(kb.param(0), tmp, index=addr)
    kb.exit_()
    return kb


def _build(kb):
    memory = MemoryImage()
    out = memory.alloc(N_THREADS * 4)
    kernel = kb.build(
        cta_size=CTA, grid_size=N_THREADS // CTA, params=(out,)
    )
    return kernel, memory, out


def _small(config):
    return config.replace(warp_count=max(4, config.warp_count // 4))


CONFIGS = {
    "baseline": lambda: _small(presets.baseline()),
    "warp64": lambda: _small(presets.warp64()),
    "sbi": lambda: _small(presets.sbi()),
    "sbi_nc": lambda: _small(presets.sbi(constraints=False)),
    "swi": lambda: _small(presets.swi()),
    "swi_dm": lambda: _small(presets.swi(ways=1, lane_shuffle="xor")),
    "sbi_swi": lambda: _small(presets.sbi_swi()),
}


class TestCrossModeEquivalence:
    @given(kernels())
    @settings(
        max_examples=25,
        deadline=None,
        suppress_health_check=[HealthCheck.too_slow, HealthCheck.data_too_large],
    )
    def test_all_modes_match_reference(self, kb):
        kernel, ref_mem, out = _build(kb)
        run_kernel(kernel, ref_mem)
        expected = ref_mem.read_array(out, N_THREADS)
        for name, factory in CONFIGS.items():
            kernel2, mem2, out2 = _build(kb)
            stats = simulate(kernel2, mem2, factory())
            got = mem2.read_array(out2, N_THREADS)
            assert np.array_equal(got, expected), (
                "mode %s diverged from the reference" % name
            )
            assert stats.cycles > 0

    @given(kernels())
    @settings(
        max_examples=10,
        deadline=None,
        suppress_health_check=[HealthCheck.too_slow, HealthCheck.data_too_large],
    )
    def test_thread_instructions_mode_invariant(self, kb):
        """Total per-thread work is an architectural property: identical
        across all schedulers (issue counts may differ)."""
        counts = set()
        for factory in (CONFIGS["baseline"], CONFIGS["sbi"], CONFIGS["sbi_swi"]):
            kernel, mem, _ = _build(kb)
            stats = simulate(kernel, mem, factory())
            counts.add(stats.thread_instructions)
        assert len(counts) == 1
