"""Shared L2: sectored lines, LRU eviction, partitioning, MSHRs."""

import pytest

from repro.timing.config import GPUConfig, SMConfig
from repro.timing.dram import DRAMChannel
from repro.timing.l2 import L2Cache, L2Partition, L2System


def make_cache(sets=4, ways=2, block=128, sector=32):
    return L2Cache(size=sets * ways * block, ways=ways, block=block, sector=sector)


def make_partition(sets=4, ways=2, latency=10, bandwidth=16.0, dram_latency=100):
    return L2Partition(
        size=sets * ways * 128,
        ways=ways,
        block=128,
        sector=32,
        latency=latency,
        dram=DRAMChannel(bandwidth, dram_latency),
    )


class TestL2Cache:
    def test_geometry_validation(self):
        with pytest.raises(ValueError):
            L2Cache(size=1000, ways=3, block=128, sector=32)
        with pytest.raises(ValueError):
            L2Cache(size=1024, ways=2, block=128, sector=48)

    def test_sectors_of(self):
        c = make_cache()
        assert list(c.sectors_of(0, 128)) == [0, 1, 2, 3]
        assert list(c.sectors_of(32, 32)) == [1]
        assert list(c.sectors_of(0, 1)) == [0]
        assert list(c.sectors_of(128 + 64, 64)) == [2, 3]

    def test_miss_then_sector_hit(self):
        c = make_cache()
        ready, missing = c.probe(0, range(4))
        assert ready is None and missing == [0, 1, 2, 3]
        c.fill(0, [0, 1], ready_at=50)
        ready, missing = c.probe(0, range(2))
        assert ready == 50 and missing == []

    def test_partial_line_still_misses_other_sectors(self):
        c = make_cache()
        c.fill(0, [0], ready_at=10)
        ready, missing = c.probe(0, range(4))
        assert ready == 10 and missing == [1, 2, 3]

    def test_refill_keeps_earliest_ready(self):
        c = make_cache()
        c.fill(0, [0], ready_at=20)
        c.fill(0, [0], ready_at=10)
        ready, _ = c.probe(0, range(1))
        assert ready == 10

    def test_lru_eviction(self):
        c = make_cache(sets=4, ways=2)
        stride = 4 * 128  # set stride
        c.fill(0, [0], 0)
        c.fill(stride, [0], 0)  # same set, second way
        c.probe(0, range(1))  # touch line 0 so `stride` is LRU
        c.fill(2 * stride, [0], 0)  # evicts `stride`
        assert c.contains(0)
        assert not c.contains(stride)
        assert c.contains(2 * stride)
        assert c.evictions == 1

    def test_eviction_drops_all_sectors(self):
        c = make_cache(sets=1, ways=1)
        c.fill(0, [0, 1, 2, 3], 0)
        c.fill(128, [0], 0)  # same (only) set: evicts line 0 entirely
        ready, missing = c.probe(0, range(4))
        assert ready is None and missing == [0, 1, 2, 3]

    def test_invalidate_all(self):
        c = make_cache()
        c.fill(0, [0], 0)
        c.invalidate_all()
        assert not c.contains(0)

    def test_interleaved_slice_uses_all_sets(self):
        """A partition only sees every Nth line; set indexing must
        strip the partition bits or 1/N of the sets go unused."""
        c = L2Cache(size=4 * 1 * 128, ways=1, block=128, sector=32, interleave=4)
        # Partition 0 of a 4-way interleave sees line indices 0,4,8,12.
        for i in range(4):
            c.fill(i * 4 * 128, [0], 0)
        assert c.evictions == 0  # four lines, four distinct sets
        for i in range(4):
            assert c.contains(i * 4 * 128)


class TestL2Partition:
    def test_hit_latency(self):
        p = make_partition(latency=10)
        p.read(0, 128, now=0)  # miss, fills all 4 sectors
        fill = p.dram.busy_until  # 128B at 16 B/c
        hit = p.read(0, 128, now=1000)
        assert hit == 1000 + 10
        assert p.hits == 1 and p.misses == 1 and p.accesses == 2

    def test_miss_fetches_only_missing_sectors(self):
        p = make_partition()
        p.read(0, 32, now=0)  # one sector
        assert p.sector_fills == 1
        assert p.dram.bytes_transferred == 32
        p.read(0, 128, now=1000)  # the other three
        assert p.sector_fills == 4
        assert p.dram.bytes_transferred == 128

    def test_mshr_merges_concurrent_misses(self):
        p = make_partition()
        first = p.read(0, 128, now=0)
        second = p.read(0, 128, now=1)  # fill in flight: no new traffic
        assert p.dram.bytes_transferred == 128
        assert second <= first + 1

    def test_write_through_consumes_bandwidth(self):
        p = make_partition(bandwidth=16.0)
        p.write(0, 64, now=0)
        assert p.dram.bytes_transferred == 64
        assert p.cache.contains(0) is False  # no write-allocate


class TestL2System:
    def _config(self, partitions=2):
        return GPUConfig(
            sm=SMConfig(),
            sm_count=2,
            l2_size=partitions * 4 * 2 * 128,  # 4 sets x 2 ways per slice
            l2_ways=2,
            dram_partitions=partitions,
            dram_bandwidth=32.0,
        )

    def test_requires_l2(self):
        with pytest.raises(ValueError):
            L2System(GPUConfig())

    def test_partition_routing_by_line_address(self):
        sys = L2System(self._config(partitions=2))
        sys.request(128, now=0, addr=0)  # line 0 -> partition 0
        sys.request(128, now=0, addr=128)  # line 1 -> partition 1
        sys.request(128, now=0, addr=256)  # line 2 -> partition 0
        assert [p.accesses for p in sys.partitions] == [2, 1]

    def test_partitions_have_independent_bandwidth(self):
        sys = L2System(self._config(partitions=2))
        a = sys.request(128, now=0, addr=0)
        b = sys.request(128, now=0, addr=128)
        assert a == b  # different channels: no serialisation

    def test_slices_spread_their_lines_over_all_sets(self):
        sys = L2System(self._config(partitions=2))
        # 8 consecutive lines land 4 per partition; each slice has
        # 4 sets x 2 ways, so nothing should be evicted.
        for line in range(8):
            sys.request(128, now=0, addr=line * 128)
        assert sum(p.cache.evictions for p in sys.partitions) == 0

    def test_aggregate_counters(self):
        sys = L2System(self._config(partitions=2))
        sys.request(128, now=0, addr=0)
        sys.request(128, now=10_000, addr=0)
        sys.post_write(32, now=0, addr=128)
        assert sys.accesses == 2 and sys.hits == 1 and sys.misses == 1
        assert sys.sector_fills == 4
        assert sys.dram_bytes == 128 + 32
