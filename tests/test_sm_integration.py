"""SM pipeline integration: barriers, CTA dispatch, event skipping,
memory-system interaction, and the paper's structural properties."""

import numpy as np
import pytest

from repro.core import presets
from repro.core.sm import SimulationError, StreamingMultiprocessor
from repro.core.simulator import simulate
from repro.functional.memory import MemoryImage
from repro.isa.builder import KernelBuilder
from repro.isa.instructions import CmpOp, MemSpace


def _barrier_kernel():
    """Producer/consumer through shared memory: wrong barrier handling
    corrupts the result."""
    kb = KernelBuilder("barrier")
    t, v, a, p = kb.regs("t", "v", "a", "p")
    kb.mov(t, kb.tid)
    kb.mul(a, t, 4)
    kb.st(0, t, index=a, space=MemSpace.SHARED)
    kb.bar()
    # Read the neighbour's value (wraps within the CTA).
    kb.add(v, t, 1)
    kb.and_(v, v, 63)
    kb.mul(a, v, 4)
    kb.ld(v, 0, index=a, space=MemSpace.SHARED)
    kb.mad(t, kb.ctaid, kb.ntid, t)
    kb.mul(a, t, 4)
    kb.st(kb.param(0), v, index=a)
    kb.exit_()
    return kb


def _divergent_barrier_kernel():
    """Threads reach the barrier from divergent paths (legal: all
    threads execute it)."""
    kb = KernelBuilder("divbar")
    t, p, v, a = kb.regs("t", "p", "v", "a")
    kb.mov(t, kb.tid)
    kb.and_(p, t, 1)
    kb.bra("odd", cond=p)
    kb.mov(v, 10)
    kb.bra("join")
    kb.label("odd")
    kb.mov(v, 20)
    kb.label("join")
    kb.bar()
    kb.mad(t, kb.ctaid, kb.ntid, t)
    kb.mul(a, t, 4)
    kb.st(kb.param(0), v, index=a)
    kb.exit_()
    return kb


ALL_MODES = ("baseline", "warp64", "sbi", "swi", "sbi_swi")


class TestBarriers:
    @pytest.mark.parametrize("mode", ALL_MODES)
    def test_producer_consumer(self, mode):
        mem = MemoryImage()
        out = mem.alloc(256 * 4)
        kernel = _barrier_kernel().build(
            cta_size=64, grid_size=4, params=(out,), shared_bytes=64 * 4
        )
        simulate(kernel, mem, presets.by_name(mode))
        got = mem.read_array(out, 256)
        expect = np.tile((np.arange(64) + 1) % 64, 4)
        np.testing.assert_array_equal(got, expect)

    @pytest.mark.parametrize("mode", ALL_MODES)
    def test_divergent_arrival(self, mode):
        mem = MemoryImage()
        out = mem.alloc(128 * 4)
        kernel = _divergent_barrier_kernel().build(
            cta_size=64, grid_size=2, params=(out,)
        )
        simulate(kernel, mem, presets.by_name(mode))
        got = mem.read_array(out, 128)
        expect = np.where(np.arange(128) % 2 == 1, 20, 10)
        np.testing.assert_array_equal(got, expect)


class TestCTADispatch:
    def test_more_ctas_than_slots(self):
        kb = KernelBuilder("many")
        t, a = kb.regs("t", "a")
        kb.mov(t, kb.tid)
        kb.mad(t, kb.ctaid, kb.ntid, t)
        kb.mul(a, t, 4)
        kb.st(kb.param(0), t, index=a)
        kb.exit_()
        mem = MemoryImage()
        n = 4096  # 16 CTAs of 256 > resident capacity
        out = mem.alloc(n * 4)
        kernel = kb.build(cta_size=256, grid_size=16, params=(out,))
        stats = simulate(kernel, mem, presets.baseline())
        assert stats.ctas_launched == 16
        np.testing.assert_array_equal(mem.read_array(out, n), np.arange(n))

    def test_partial_last_warp(self):
        kb = KernelBuilder("partial")
        t, a = kb.regs("t", "a")
        kb.mov(t, kb.tid)
        kb.mul(a, t, 4)
        kb.st(kb.param(0), t, index=a)
        kb.exit_()
        mem = MemoryImage()
        out = mem.alloc(64 * 4)
        kernel = kb.build(cta_size=40, grid_size=1, params=(out,))  # 40 < 64
        simulate(kernel, mem, presets.warp64())
        np.testing.assert_array_equal(mem.read_array(out, 40), np.arange(40))

    def test_oversized_cta_rejected(self):
        kb = KernelBuilder("big")
        kb.exit_()
        kernel = kb.build(cta_size=4096, grid_size=1)
        with pytest.raises(SimulationError):
            simulate(kernel, MemoryImage(), presets.baseline())

    def test_warps_retired_counted(self):
        kb = KernelBuilder("retire")
        kb.exit_()
        kernel = kb.build(cta_size=128, grid_size=2)
        stats = simulate(kernel, MemoryImage(), presets.baseline())
        assert stats.warps_retired == 8  # 2 CTAs x 4 warps of 32


class TestTimeoutAndEvents:
    def test_cycle_limit(self):
        kb = KernelBuilder("spin")
        c, p = kb.regs("c", "p")
        kb.mov(c, 1_000_000)
        kb.label("l")
        kb.sub(c, c, 1)
        kb.setp(p, CmpOp.GT, c, 0)
        kb.bra("l", cond=p)
        kb.exit_()
        kernel = kb.build(cta_size=32, grid_size=1)
        with pytest.raises(SimulationError, match="exceeded"):
            simulate(kernel, MemoryImage(), presets.baseline(max_cycles=500))

    def test_overrun_report_ipc_is_per_cycle(self):
        """The overrun message must divide by *cycles*, report both
        thread-level IPC and issue IPC, and never divide by zero."""
        from repro.core.sm import _overrun_report
        from repro.timing.stats import Stats

        stats = Stats(instructions_issued=50, thread_instructions=1600)
        msg = _overrun_report("k", 1000, 800, stats)
        assert "kernel k exceeded the 1000-cycle limit at cycle 800" in msg
        assert "50 instructions issued" in msg
        assert "1600 thread instructions" in msg
        assert "IPC %.2f" % (1600 / 800) in msg       # per-cycle, not per-limit
        assert "issue IPC %.3f" % (50 / 800) in msg
        # now=0 (overrun before any progress) must not crash.
        assert "IPC 0.00" in _overrun_report("k", 0, 0, Stats())

    def test_overrun_message_end_to_end(self):
        kb = KernelBuilder("spin2")
        c, p = kb.regs("c", "p")
        kb.mov(c, 1_000_000)
        kb.label("l")
        kb.sub(c, c, 1)
        kb.setp(p, CmpOp.GT, c, 0)
        kb.bra("l", cond=p)
        kb.exit_()
        kernel = kb.build(cta_size=32, grid_size=1)
        with pytest.raises(SimulationError) as excinfo:
            simulate(kernel, MemoryImage(), presets.baseline(max_cycles=500))
        msg = str(excinfo.value)
        assert "500-cycle limit" in msg
        assert "issue IPC" in msg

    def test_event_skipping_matches_dense_clock(self):
        """Event-driven skipping is a pure wall-clock optimisation: a
        memory-latency-bound kernel still reports correct cycle counts
        (DRAM latency must show up in the total)."""
        kb = KernelBuilder("latency")
        t, a, v = kb.regs("t", "a", "v")
        kb.mov(t, kb.tid)
        kb.mul(a, t, 4)
        kb.ld(v, kb.param(0), index=a)
        kb.mul(v, v, 2)
        kb.st(kb.param(0), v, index=a)
        kb.exit_()
        mem = MemoryImage()
        data = mem.alloc_array(np.arange(32))
        kernel = kb.build(cta_size=32, grid_size=1, params=(data,))
        stats = simulate(kernel, mem, presets.baseline())
        assert stats.cycles > presets.baseline().dram_latency

    def test_divergent_barrier_ub_is_diagnosed_not_hung(self):
        """A barrier on one side of an unreconverged divergence is
        undefined behaviour in the programming model.  The stack
        serialises paths, so the parked top of stack can starve the
        other path: the simulator must report a deadlock diagnostic
        promptly instead of spinning.  Thread-frontier models run the
        minimum PC (the exiting path) first and complete."""
        kb = KernelBuilder("dead")
        t, p = kb.regs("t", "p")
        kb.mov(t, kb.tid)
        kb.and_(p, t, 1)
        kb.bra("wait", cond=p)
        kb.exit_()
        kb.label("wait")
        kb.bar()
        kb.exit_()
        kernel = kb.build(cta_size=32, grid_size=1, layout="as_is")
        # Frontier reconvergence completes (exit has the lower PC).
        simulate(kernel, MemoryImage(), presets.warp64(max_cycles=100_000))
        # The stack either completes or reports a deadlock — never hangs.
        try:
            simulate(kernel, MemoryImage(), presets.baseline(max_cycles=100_000))
        except SimulationError as err:
            assert "deadlock" in str(err)


class TestMemorySystemIntegration:
    def test_l1_reuse_detected(self):
        kb = KernelBuilder("reuse")
        t, a, v, acc, c, p = kb.regs("t", "a", "v", "acc", "c", "p")
        kb.mov(t, kb.tid)
        kb.mul(a, t, 4)
        kb.mov(c, 4)
        kb.label("l")
        kb.ld(v, kb.param(0), index=a)
        kb.add(acc, acc, v)
        kb.sub(c, c, 1)
        kb.setp(p, CmpOp.GT, c, 0)
        kb.bra("l", cond=p)
        kb.st(kb.param(0), acc, index=a)
        kb.exit_()
        mem = MemoryImage()
        data = mem.alloc_array(np.ones(256))
        kernel = kb.build(cta_size=256, grid_size=1, params=(data,))
        stats = simulate(kernel, mem, presets.baseline())
        assert stats.l1_hits > stats.l1_misses

    def test_dram_traffic_accounted(self):
        kb = KernelBuilder("stream")
        t, a, v = kb.regs("t", "a", "v")
        kb.mov(t, kb.tid)
        kb.mad(t, kb.ctaid, kb.ntid, t)
        kb.mul(a, t, 4)
        kb.ld(v, kb.param(0), index=a)
        kb.st(kb.param(1), v, index=a)
        kb.exit_()
        mem = MemoryImage()
        n = 1024
        src = mem.alloc_array(np.arange(n))
        dst = mem.alloc(n * 4)
        kernel = kb.build(cta_size=256, grid_size=4, params=(src, dst))
        stats = simulate(kernel, mem, presets.baseline())
        assert stats.dram_bytes >= n * 4  # fills + write-through
        np.testing.assert_array_equal(mem.read_array(dst, n), np.arange(n))
