"""Execution groups (co-issue rules) and the tagged fetch pool."""

import pytest

from repro.isa.instructions import Instruction, Op, OpClass, imm
from repro.core import presets
from repro.timing.masks import full_mask
from repro.timing.units import Backend, ExecGroup


class TestExecGroup:
    def make(self, width=64, warp=64):
        return ExecGroup("G", OpClass.MAD, width, warp)

    def test_accept_and_busy(self):
        g = self.make(width=8)
        waves = g.accept(0, full_mask(64))
        assert waves == 8
        assert not g.can_accept(1, full_mask(64), co_issue=False)
        assert g.can_accept(8, full_mask(64), co_issue=False)

    def test_co_issue_disjoint(self):
        g = self.make()
        g.accept(0, 0x0F)
        assert g.can_accept(0, 0xF0, co_issue=True)
        assert not g.can_accept(0, 0x0C, co_issue=True)
        assert not g.can_accept(0, 0xF0, co_issue=False)

    def test_at_most_two_per_cycle(self):
        g = self.make()
        g.accept(0, 0x0F)
        g.accept(0, 0xF0)
        assert not g.can_accept(0, 0xF00, co_issue=True)
        with pytest.raises(RuntimeError):
            g.accept(0, 0xF00)

    def test_overlap_accept_raises(self):
        g = self.make()
        g.accept(0, 0x0F)
        with pytest.raises(RuntimeError):
            g.accept(0, 0x0C)

    def test_union_occupancy(self):
        g = self.make(width=32)
        g.accept(0, full_mask(32))          # low half: 1 wave
        g.accept(0, full_mask(32) << 32)    # high half too: union = 2 waves
        assert g.free_at == 2

    def test_new_cycle_resets_co_issue_state(self):
        g = self.make()
        g.accept(0, 0x0F)
        assert g.can_accept(1, 0x0F, co_issue=False)

    def test_hold_extends(self):
        g = self.make()
        g.accept(0, 1)
        g.hold(10)
        assert g.free_at == 10


class TestBackend:
    def test_baseline_has_two_mad_groups(self):
        b = Backend(presets.baseline())
        mads = [g for g in b.groups if g.kind is OpClass.MAD]
        assert len(mads) == 2 and all(g.width == 32 for g in mads)

    def test_wide_has_single_mad_group(self):
        b = Backend(presets.sbi())
        mads = [g for g in b.groups if g.kind is OpClass.MAD]
        assert len(mads) == 1 and mads[0].width == 64

    def test_ctrl_rides_mad(self):
        b = Backend(presets.baseline())
        assert all(g.kind is OpClass.MAD for g in b.candidates(OpClass.CTRL))

    def test_pick_prefers_free_group(self):
        b = Backend(presets.baseline())
        g1 = b.pick_group(OpClass.MAD, 0, full_mask(32), co_issue=False)
        g1.accept(0, full_mask(32))
        g2 = b.pick_group(OpClass.MAD, 0, full_mask(32), co_issue=False)
        assert g2 is not None and g2 is not g1

    def test_pick_none_when_saturated(self):
        b = Backend(presets.sbi())
        mad = b.pick_group(OpClass.MAD, 0, full_mask(64), co_issue=False)
        mad.accept(0, full_mask(64))
        assert b.pick_group(OpClass.MAD, 0, full_mask(64), co_issue=True) is None

    def test_next_free_cycle(self):
        b = Backend(presets.sbi())
        assert b.next_free_cycle(0) is None
        b.sfu.accept(0, full_mask(64))  # 8 waves on the 8-wide SFU
        assert b.next_free_cycle(0) == 8


class TestFetchEngine:
    def _setup(self, mode="baseline"):
        import numpy as np
        from repro.core.sm import StreamingMultiprocessor
        from repro.functional.memory import MemoryImage
        from repro.isa.builder import KernelBuilder

        kb = KernelBuilder("f")
        v, a = kb.regs("v", "a")
        for _ in range(6):
            kb.add(v, v, 1)
        kb.mul(a, kb.tid, 4)
        kb.st(kb.param(0), v, index=a)
        kb.exit_()
        mem = MemoryImage()
        out = mem.alloc(4096)
        cfg = presets.by_name(mode)
        kernel = kb.build(cta_size=cfg.warp_width, grid_size=4, params=(out,))
        sm = StreamingMultiprocessor(kernel, mem, cfg)
        sm._initial_launch()
        return sm

    def test_fetch_bandwidth_limit(self):
        sm = self._setup()
        fetched = sm.fetch.tick(0, sm.live_warps())
        assert fetched == sm.config.fetch_width

    def test_decode_delay(self):
        sm = self._setup()
        sm.fetch.tick(0, sm.live_warps())
        warp = sm.live_warps()[0]
        split = warp.model.hot_splits(0)[0]
        assert sm.fetch.entry_for(warp.wid, split, 0) is None
        assert sm.fetch.entry_for(warp.wid, split, 1) is not None

    def test_consume_clears_entry(self):
        sm = self._setup()
        sm.fetch.tick(0, sm.live_warps())
        warp = sm.live_warps()[0]
        split = warp.model.hot_splits(0)[0]
        entry = sm.fetch.entry_for(warp.wid, split, 1)
        sm.fetch.consume(warp.wid, entry)
        assert sm.fetch.entry_for(warp.wid, split, 1) is None

    def test_stale_tag_not_served(self):
        sm = self._setup()
        sm.fetch.tick(0, sm.live_warps())
        warp = sm.live_warps()[0]
        split = warp.model.hot_splits(0)[0]
        split.pc = 3  # redirect
        assert sm.fetch.entry_for(warp.wid, split, 1) is None

    def test_round_robin_covers_all_warps(self):
        sm = self._setup()
        live = sm.live_warps()
        for cycle in range(2 * len(live)):
            sm.fetch.tick(cycle, live)
        served = {
            wid
            for wid, ways in sm.fetch.buffers.items()
            if any(e is not None for e in ways)
        }
        assert len(served) == len(live)

    def test_redirect_gates_fetch(self):
        sm = self._setup()
        warp = sm.live_warps()[0]
        split = warp.model.hot_splits(0)[0]
        split.redirect_ready_at = 100
        sm.fetch.tick(0, [warp])
        assert sm.fetch.entry_for(warp.wid, split, 1) is None
