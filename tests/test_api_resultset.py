"""ResultSet: queries, aggregation, serialization, merge semantics."""

import csv
import io
import json

import pytest

from repro.api import CellError, Result, ResultSet
from repro.timing.stats import DeviceStats, Stats


def _stats(cycles, ti):
    return Stats(cycles=cycles, thread_instructions=ti, instructions_issued=ti // 2)


def _rs():
    return ResultSet(
        [
            Result("bfs", "tiny", "baseline", _stats(100, 1000)),
            Result("bfs", "tiny", "sbi_swi", _stats(100, 2000)),
            Result("lud", "tiny", "baseline", _stats(200, 1000)),
            Result("lud", "tiny", "sbi_swi", _stats(100, 1000)),
            Result("tmd1", "tiny", "baseline", _stats(100, 100)),
            Result("tmd1", "tiny", "sbi_swi", _stats(100, 10000)),
        ]
    )


class TestQueries:
    def test_axes(self):
        rs = _rs()
        assert rs.workloads == ["bfs", "lud", "tmd1"]
        assert rs.configs == ["baseline", "sbi_swi"]
        assert rs.sizes == ["tiny"]
        assert len(rs) == 6

    def test_get(self):
        assert _rs().get("bfs", "sbi_swi").ipc == 20.0
        assert _rs().get("bfs", "sbi_swi", size="tiny").ipc == 20.0
        with pytest.raises(KeyError):
            _rs().get("bfs", "nope")

    def test_get_ambiguous_size(self):
        rs = _rs().merge(
            ResultSet([Result("bfs", "bench", "baseline", _stats(10, 10))])
        )
        with pytest.raises(KeyError, match="size"):
            rs.get("bfs", "baseline")

    def test_filter(self):
        rs = _rs().filter(workload=["bfs", "lud"], config="baseline")
        assert len(rs) == 2
        assert rs.configs == ["baseline"]

    def test_filter_predicate(self):
        rs = _rs().filter(predicate=lambda r: r.stats.ipc >= 10.0)
        assert len(rs) == 4

    def test_filter_keeps_matching_errors(self):
        rs = ResultSet(
            [Result("bfs", "tiny", "baseline", _stats(10, 10))],
            errors=[
                CellError("bfs", "tiny", "sbi_swi", "boom"),
                CellError("lud", "bench", "baseline", "other"),
            ],
        )
        tiny = rs.filter(size="tiny")
        assert tiny.errors == [CellError("bfs", "tiny", "sbi_swi", "boom")]
        assert rs.filter(workload="lud").errors[0].error == "other"
        assert rs.filter(config="baseline", size="tiny").errors == []

    def test_pivot_and_ipc_table(self):
        table = _rs().ipc_table()
        assert table["bfs"] == {"baseline": 10.0, "sbi_swi": 20.0}
        cycles = _rs().pivot("workload", "config", "cycles")
        assert cycles["lud"]["baseline"] == 200

    def test_pivot_callable_metric(self):
        table = _rs().pivot("workload", "config", lambda s: s.cycles * 2)
        assert table["bfs"]["baseline"] == 200

    def test_pivot_rejects_ambiguous_collapsed_axis(self):
        rs = _rs().merge(
            ResultSet([Result("bfs", "bench", "baseline", _stats(10, 10))])
        )
        with pytest.raises(ValueError, match="size"):
            rs.ipc_table()

    def test_speedup_over(self):
        speedups = _rs().speedup_over("baseline")
        assert speedups["bfs"]["sbi_swi"] == 2.0
        assert speedups["bfs"]["baseline"] == 1.0
        assert speedups["lud"]["sbi_swi"] == 2.0


class TestMeans:
    def test_geo_mean_excludes_tmd(self):
        means = _rs().geo_mean()
        # bfs 10, lud 5 -> gmean ~7.07; tmd1 (ipc 1) excluded.
        assert means["baseline"] == pytest.approx(50**0.5)

    def test_geo_mean_speedup(self):
        means = _rs().geo_mean(base="baseline")
        assert means["sbi_swi"] == pytest.approx(2.0)
        assert means["baseline"] == pytest.approx(1.0)

    def test_harmonic_mean(self):
        means = _rs().harmonic_mean()
        assert means["baseline"] == pytest.approx(2 / (1 / 10.0 + 1 / 5.0))

    def test_custom_exclusion(self):
        means = _rs().geo_mean(exclude=("bfs", "lud"))
        assert means["baseline"] == pytest.approx(1.0)  # only tmd1 left

    def test_all_workloads_excluded_raises(self):
        # Excluding every workload present must fail loudly rather
        # than return an empty mapping that reads like "no configs".
        with pytest.raises(ValueError, match="excluded"):
            _rs().geo_mean(exclude=("bfs", "lud", "tmd1"))
        with pytest.raises(ValueError, match="excluded"):
            _rs().harmonic_mean(exclude=("bfs", "lud", "tmd1"))
        # The MEAN_EXCLUDED default path hits the same guard when a
        # filtered view holds only excluded workloads.
        with pytest.raises(ValueError, match="excluded"):
            _rs().filter(workload="tmd1").geo_mean()

    def test_excluded_only_view_still_renders(self):
        # Rendering stays usable: the mean row degrades to "-".
        view = _rs().filter(workload="tmd1")
        text = view.to_text()
        assert "geo_mean" in text
        markdown = view.to_markdown()
        assert "geo_mean | - |" in markdown


class TestSerialization:
    def test_json_round_trip(self):
        rs = _rs()
        again = ResultSet.from_json(rs.to_json())
        assert again == rs
        assert again.ipc_table() == rs.ipc_table()

    def test_json_round_trip_device_stats(self):
        dstats = DeviceStats(cycles=100, sm_stats=[_stats(90, 500), _stats(100, 700)])
        rs = ResultSet([Result("bfs", "tiny", "dev", dstats)])
        again = ResultSet.from_json(rs.to_json())
        assert isinstance(again.get("bfs", "dev"), DeviceStats)
        assert again.get("bfs", "dev").to_dict() == dstats.to_dict()

    def test_json_file_round_trip(self, tmp_path):
        path = str(tmp_path / "rs.json")
        rs = _rs()
        rs.to_json(path)
        assert ResultSet.from_json(path) == rs

    def test_errors_survive_round_trip(self):
        rs = ResultSet(
            [Result("bfs", "tiny", "baseline", _stats(10, 10))],
            errors=[CellError("lud", "tiny", "baseline", "boom")],
        )
        again = ResultSet.from_json(rs.to_json())
        assert again.errors == [CellError("lud", "tiny", "baseline", "boom")]

    def test_version_checked(self):
        with pytest.raises(ValueError, match="version"):
            ResultSet.from_dict({"version": 99, "results": []})

    def test_csv(self):
        rows = list(csv.DictReader(io.StringIO(_rs().to_csv())))
        assert len(rows) == 6
        bfs = [r for r in rows if r["workload"] == "bfs" and r["config"] == "baseline"]
        assert float(bfs[0]["ipc"]) == 10.0
        assert int(bfs[0]["cycles"]) == 100

    def test_csv_extra_metrics(self):
        rows = list(
            csv.DictReader(
                io.StringIO(_rs().to_csv(extra_metrics=["busy_cycles", "ipc"]))
            )
        )
        assert "busy_cycles" in rows[0]
        assert float(rows[0]["busy_cycles"]) == 0.0
        # Duplicates of headline columns are not repeated.
        assert list(rows[0]).count("ipc") == 1

    def test_markdown(self):
        text = _rs().to_markdown()
        lines = text.splitlines()
        assert lines[0] == "| workload | baseline | sbi_swi |"
        assert "| bfs | 10.00 | 20.00 |" in lines
        assert lines[-1].startswith("| geo_mean |")

    def test_text_table(self):
        assert "workload" in _rs().to_text(mean=None)


class TestMerge:
    def test_union(self):
        a = ResultSet([Result("bfs", "tiny", "baseline", _stats(10, 10))])
        b = ResultSet([Result("lud", "tiny", "baseline", _stats(20, 20))])
        merged = a.merge(b)
        assert len(merged) == 2 and len(a) == 1 and len(b) == 1

    def test_identical_duplicates_dedupe(self):
        a = ResultSet([Result("bfs", "tiny", "baseline", _stats(10, 10))])
        b = ResultSet([Result("bfs", "tiny", "baseline", _stats(10, 10))])
        assert len(a.merge(b)) == 1

    def test_conflict_raises(self):
        a = ResultSet([Result("bfs", "tiny", "baseline", _stats(10, 10))])
        b = ResultSet([Result("bfs", "tiny", "baseline", _stats(99, 10))])
        with pytest.raises(ValueError, match="conflict"):
            a.merge(b)

    def test_conflict_keep_and_replace(self):
        a = ResultSet([Result("bfs", "tiny", "baseline", _stats(10, 10))])
        b = ResultSet([Result("bfs", "tiny", "baseline", _stats(99, 10))])
        assert a.merge(b, on_conflict="keep").get("bfs", "baseline").cycles == 10
        assert a.merge(b, on_conflict="replace").get("bfs", "baseline").cycles == 99

    def test_add_conflict_raises(self):
        rs = ResultSet([Result("bfs", "tiny", "baseline", _stats(10, 10))])
        with pytest.raises(ValueError, match="conflict"):
            rs.add(Result("bfs", "tiny", "baseline", _stats(11, 10)))

    def test_conflict_error_names_the_cell_and_the_remedy(self):
        a = ResultSet([Result("bfs", "tiny", "baseline", _stats(10, 10))])
        b = ResultSet([Result("bfs", "tiny", "baseline", _stats(99, 10))])
        with pytest.raises(ValueError) as excinfo:
            a.merge(b)
        message = str(excinfo.value)
        for fragment in ("bfs", "tiny", "baseline", "on_conflict"):
            assert fragment in message

    def test_conflict_in_nested_stats_field_detected(self):
        # Differing only in a nested dict field is still a conflict —
        # comparison goes through to_dict(), not top-level scalars.
        x = _stats(10, 10)
        y = _stats(10, 10)
        y.per_op_class["mad"] = 7
        a = ResultSet([Result("bfs", "tiny", "baseline", x)])
        b = ResultSet([Result("bfs", "tiny", "baseline", y)])
        with pytest.raises(ValueError, match="conflict"):
            a.merge(b)

    def test_conflict_across_stats_kinds_is_a_conflict(self):
        a = ResultSet([Result("bfs", "tiny", "baseline", _stats(10, 10))])
        b = ResultSet([Result("bfs", "tiny", "baseline", DeviceStats())])
        with pytest.raises(ValueError, match="conflict"):
            a.merge(b)

    def test_replace_preserves_row_position_and_originals(self):
        a = ResultSet(
            [
                Result("bfs", "tiny", "baseline", _stats(10, 10)),
                Result("lud", "tiny", "baseline", _stats(20, 20)),
            ]
        )
        b = ResultSet([Result("bfs", "tiny", "baseline", _stats(99, 10))])
        merged = a.merge(b, on_conflict="replace")
        assert [r.workload for r in merged] == ["bfs", "lud"]
        assert merged.get("bfs", "baseline").cycles == 99
        # The inputs are untouched (merge returns a new set).
        assert a.get("bfs", "baseline").cycles == 10

    def test_merge_rejects_unknown_policy(self):
        a = ResultSet([Result("bfs", "tiny", "baseline", _stats(10, 10))])
        with pytest.raises(ValueError, match="on_conflict"):
            a.merge(ResultSet(), on_conflict="panic")

    def test_merge_concatenates_errors(self):
        a = ResultSet(errors=[CellError("bfs", "tiny", "baseline", "boom")])
        b = ResultSet(errors=[CellError("lud", "tiny", "baseline", "bang")])
        merged = a.merge(b)
        assert [e.workload for e in merged.errors] == ["bfs", "lud"]
        assert len(a.errors) == 1 and len(b.errors) == 1


class TestNested:
    def test_legacy_shape(self):
        nested = _rs().nested()
        assert set(nested) == {"bfs", "lud", "tmd1"}
        assert nested["bfs"]["sbi_swi"].ipc == 20.0

    def test_nested_rejects_multi_size(self):
        rs = _rs().merge(
            ResultSet([Result("bfs", "bench", "baseline", _stats(10, 10))])
        )
        with pytest.raises(ValueError, match="size"):
            rs.nested()


class TestPlot:
    """matplotlib is optional: gate cleanly, draw when available."""

    def _have_matplotlib(self):
        try:
            import matplotlib  # noqa: F401
        except ImportError:
            return False
        return True

    def test_plot_or_clean_gate(self, tmp_path):
        rs = _rs()
        if not self._have_matplotlib():
            with pytest.raises(RuntimeError, match="matplotlib"):
                rs.plot()
            return
        out = tmp_path / "bars.png"
        ax = rs.plot(save=str(out))
        assert out.exists() and ax is not None
        curve = rs.plot(kind="scaling", base="baseline")
        assert curve is not None

    def test_gate_message_points_at_text_renderers(self):
        if self._have_matplotlib():
            pytest.skip("matplotlib installed: gate unreachable")
        with pytest.raises(RuntimeError, match="to_markdown"):
            _rs().plot(kind="scaling")
