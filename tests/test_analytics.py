"""Streaming analytics: aggregators, bounded memory, engine wiring."""

import pytest

from repro.analytics import (
    BinnedSeries,
    HeatmapAggregator,
    OriginAggregator,
    TimelineAggregator,
    make_aggregators,
)
from repro.api import Engine, SweepSpec
from repro.core import presets
from repro.core.gpu import simulate_device
from repro.core.policy import OBSERVERS
from repro.core.policy.events import LEVEL_L1, ORIGIN_PRIMARY, ORIGIN_SBI
from repro.core.policy.observers import IssueEvent, MemEvent, RetireEvent
from repro.core.simulator import simulate
from repro.timing.stats import Stats
from repro.workloads import get_workload


def _issue(cycle, sm_id=0, wid=0, origin=ORIGIN_PRIMARY, active=32):
    return IssueEvent(
        cycle=cycle, sm_id=sm_id, wid=wid, pc=0, origin=origin,
        mask=(1 << active) - 1, group="mad", active=active,
    )


def _run(workload="bfs", size="tiny", mode="sbi_swi", names=("timeline",), bins=16):
    aggs = make_aggregators(list(names), bins=bins)
    inst = get_workload(workload, size)
    stats = simulate(inst.kernel, inst.memory, presets.by_name(mode),
                     observers=list(aggs.values()))
    for agg in aggs.values():
        agg.finalize(stats)
    return aggs, stats


class TestBinnedSeries:
    def test_rejects_odd_capacity(self):
        with pytest.raises(ValueError):
            BinnedSeries(7, ("a",))

    def test_rebinning_conserves_totals(self):
        series = BinnedSeries(4, ("hits",))
        for cycle in range(100):
            series.add(cycle, "hits")
        assert sum(series.series["hits"]) == 100
        assert series.width == 32  # doubled 1->2->4->8->16->32
        assert len(series.series["hits"]) == 4

    def test_add_span_crosses_bins(self):
        series = BinnedSeries(4, ("live",))
        series.add_span(1, 7, "live", 2)  # cycles 1..6 at weight 2
        # width stays 1 until a cycle >= 4 is touched; span end 7
        # forces one doubling to width 2: bins cover [0,2) [2,4) ...
        assert series.width == 2
        assert sum(series.series["live"]) == 12
        assert series.series["live"] == [2, 4, 4, 2]

    def test_late_series_joins_aligned(self):
        series = BinnedSeries(4, ("a",))
        series.add(40, "a")  # grows width to 16
        arr = series.ensure_series("b")
        series.add(40, "b")
        assert arr[40 // series.width] == 1


class TestTimeline:
    def test_registered(self):
        assert "timeline" in OBSERVERS
        assert "heatmap" in OBSERVERS
        assert "origins" in OBSERVERS

    def test_matches_stats_accounting(self):
        aggs, stats = _run(names=("timeline",))
        snap = aggs["timeline"].snapshot()
        assert snap["kind"] == "timeline"
        assert snap["total_cycles"] == stats.cycles
        assert sum(snap["series"]["issues"]) == stats.instructions_issued
        assert sum(snap["series"]["retires"]) > 0
        # Active warp-cycles can't exceed live warp-cycles anywhere.
        for active, stalled in zip(
            snap["series"]["active_warp_cycles"],
            snap["series"]["stalled_warp_cycles"],
        ):
            assert active >= 0 and stalled >= 0

    def test_render_mentions_bins(self):
        aggs, _ = _run(names=("timeline",), bins=8)
        text = aggs["timeline"].render()
        assert "timeline" in text and "stalled" in text

    def test_state_size_independent_of_cycle_count(self):
        """The acceptance bound: O(bins + warps), never O(cycles)."""

        def state_size(agg):
            cells = sum(len(arr) for arr in agg.series.series.values())
            return cells + len(agg._live) + len(agg._issuers)

        sizes = []
        for scale in (1_000, 100_000):
            agg = TimelineAggregator(bins=16)
            for wid in range(4):
                agg.on_issue(_issue(0, wid=wid))
            step = scale // 100
            for cycle in range(step, scale, step):
                agg.on_issue(_issue(cycle, wid=cycle % 4))
                agg.on_l1_miss(MemEvent(cycle, 0, LEVEL_L1, 1))
            for wid in range(4):
                agg.on_retire(RetireEvent(scale, 0, wid, 0))
            agg.finalize(Stats(cycles=scale + 1))
            sizes.append(state_size(agg))
        assert sizes[0] == sizes[1]

    def test_gap_integrates_stalled_cycles(self):
        agg = TimelineAggregator(bins=4)
        agg.on_issue(_issue(0))          # warp goes live at cycle 0
        agg.on_issue(_issue(100))        # 99 event-free cycles between
        agg.on_retire(RetireEvent(101, 0, 0, 0))
        agg.finalize(Stats(cycles=102))
        snap = agg.snapshot()
        live = sum(snap["series"]["active_warp_cycles"]) + sum(
            snap["series"]["stalled_warp_cycles"]
        )
        assert live == 102  # cycles 0..101 inclusive, one live warp
        assert sum(snap["series"]["active_warp_cycles"]) == 2

    def test_finalize_idempotent(self):
        agg = TimelineAggregator(bins=4)
        agg.on_issue(_issue(0))
        agg.finalize(Stats(cycles=10))
        first = agg.snapshot()
        agg.finalize(Stats(cycles=10))
        assert agg.snapshot() == first


class TestHeatmap:
    def test_multi_sm_grid(self):
        aggs = make_aggregators(["heatmap"], bins=8)
        inst = get_workload("transpose", "tiny")
        config = presets.device("sbi_swi", sm_count=4)
        stats = simulate_device(
            inst.kernel, inst.memory, config, observers=list(aggs.values())
        )
        agg = aggs["heatmap"]
        agg.finalize(stats)
        snap = agg.snapshot()
        assert snap["sms"] == [0, 1, 2, 3]
        assert len(snap["ipc"]) == 4 and len(snap["occupancy"]) == 4
        total = sum(sum(row) for row in snap["issues"])
        assert total == sum(s.instructions_issued for s in stats.sm_stats)
        for row in snap["occupancy"]:
            assert all(0.0 <= v <= 1.0 for v in row)
        assert "sm3" in agg.render()

    def test_single_sm_run_renders(self):
        aggs, _ = _run(names=("heatmap",), bins=8)
        assert "sm0" in aggs["heatmap"].render()


class TestOrigins:
    def test_matches_stats_origin_counters(self):
        aggs, stats = _run(names=("origins",))
        agg = aggs["origins"]
        assert agg.issues[ORIGIN_PRIMARY] == stats.issued_primary
        issued = dict(agg.issues)
        assert sum(issued.values()) == stats.instructions_issued
        snap = agg.snapshot()
        assert snap["kind"] == "origins"
        assert snap["per_sm"]["0"] == issued

    def test_peak_bounded_by_issue_width(self):
        aggs, _ = _run(mode="sbi_swi", names=("origins",))
        config = presets.by_name("sbi_swi")
        peaks = aggs["origins"].peak_per_cycle
        assert peaks and max(peaks.values()) <= config.issue_width

    def test_rejects_unknown_origin(self):
        agg = OriginAggregator()
        with pytest.raises(ValueError, match="vocabulary"):
            agg.on_issue(_issue(0, origin="bogus"))

    def test_per_cycle_peak_tracks_co_issue(self):
        agg = OriginAggregator()
        agg.on_issue(_issue(5, wid=0))
        agg.on_issue(_issue(5, wid=1, origin=ORIGIN_SBI))
        agg.on_issue(_issue(6, wid=0))
        agg.finalize(Stats(cycles=7))
        assert agg.peak_per_cycle == {0: 2}


class TestMakeAggregators:
    def test_bins_override_and_binless_observers(self):
        aggs = make_aggregators(["timeline", "origins", "counter"], bins=8)
        assert aggs["timeline"].series.bin_count == 8
        assert isinstance(aggs["origins"], OriginAggregator)
        assert type(aggs["counter"]).__name__ == "EventCounter"

    def test_unknown_name_lists_registry(self):
        with pytest.raises(ValueError, match="registered names"):
            make_aggregators(["nope"])


class TestEngineWiring:
    SPEC = SweepSpec(workloads=["bfs"], configs=["baseline", "sbi_swi"], sizes=["tiny"])

    def test_observations_recorded_per_cell(self, tmp_path):
        engine = Engine(
            cache_dir=str(tmp_path / "cache"), memo={}, observers=["origins"]
        )
        engine.run(self.SPEC)
        assert set(engine.observations) == {
            ("bfs", "tiny", "baseline"),
            ("bfs", "tiny", "sbi_swi"),
        }
        agg = engine.observations[("bfs", "tiny", "sbi_swi")]["origins"]
        assert isinstance(agg, OriginAggregator)
        assert sum(agg.issues.values()) > 0
        assert agg.total_cycles > 0  # finalize ran

    def test_observed_cells_bypass_the_cache(self, tmp_path):
        # Warm the cache, then re-run with observers: every cell must
        # simulate again (a cached Stats has no event stream).
        cache = str(tmp_path / "cache")
        Engine(cache_dir=cache, memo={}).run(self.SPEC)
        events = []
        engine = Engine(
            cache_dir=cache, memo={}, observers=["origins"], progress=events.append
        )
        engine.run(self.SPEC)
        assert events and all(not e.cached for e in events)
        assert len(engine.observations) == 2

    def test_observers_require_inline_backend(self):
        with pytest.raises(ValueError, match="inline"):
            Engine(backend="process", observers=["origins"])

    def test_unknown_observer_rejected_eagerly(self):
        with pytest.raises(ValueError, match="observer"):
            Engine(observers=["nope"])

    def test_observers_default_to_inline_even_with_jobs(self):
        engine = Engine(jobs=4, observers=["origins"])
        assert engine.backend == "inline"
