"""Clean counterparts of the cache-key fixtures (never imported)."""

import json


def config_hash(payload):
    return json.dumps(payload, sort_keys=True)  # strict: no fallback


LATENCY_SCALE = {"1.5": "slow", "2.0": "slower"}  # string keys


def tweak(table):
    table["0.5"] = "half"
    return table
