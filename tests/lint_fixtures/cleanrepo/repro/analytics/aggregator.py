"""Clean counterpart of the analytics vocabulary fixture (never imported)."""

from repro.core.policy.events import ORIGIN_SBI, ORIGIN_SWI


class Aggregator:
    def on_issue(self, event):
        if event.origin == ORIGIN_SBI:  # constant from the vocabulary module
            self.sbi += 1

    def on_mem(self, event, stats):
        stats.record_issue("mad", 32, ORIGIN_SWI)
