"""Clean counterparts of the hot-path fixtures (never imported)."""

from dataclasses import dataclass


class PerCycleThing:
    __slots__ = ("value",)

    def __init__(self, value):
        self.value = value


@dataclass(slots=True)
class PerCycleRecord:
    cycle: int = 0


class SlottedSub(PerCycleThing):
    __slots__ = ()  # subclass of a slotted base stays slotted


class WithClassAttr:
    __slots__ = ("value",)

    kind = "static"  # class attr, never instance-assigned: fine

    def __init__(self, value):
        self.value = value


class CustomError(ValueError):
    """Exceptions are exempt from the slots requirement."""
