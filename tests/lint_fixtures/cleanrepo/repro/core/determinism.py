"""Clean counterparts of the determinism fixtures (never imported)."""

import numpy as np


def draw(seed):
    rng = np.random.default_rng(seed)  # seeded: fine
    return rng.integers(0, 4)


def now(cycle):
    return cycle  # simulated time only


def visit(items):
    chosen = {3, 1, 2}
    for value in sorted(chosen):  # sorted(): deterministic order
        yield value
    for value in sorted(set(items)):
        yield value
    ordered = [v for v in ("a", "b")]  # tuple, not a set
    return ordered


def remember(obj, table):
    table[obj.name] = obj  # stable identity, not id()
    return table
