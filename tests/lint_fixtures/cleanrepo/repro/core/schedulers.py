"""Clean counterparts of the registry fixtures (never imported)."""

from repro.core.policy import POLICIES
from repro.core.policy.events import ORIGIN_SBI, ORIGIN_SWI


def record(origin, stats):
    if origin == ORIGIN_SBI:  # constant from the vocabulary module
        stats.record_issue("mad", 32, ORIGIN_SWI)


def install(spec):
    POLICIES.register("mine", spec)  # the Registry API
    return POLICIES.names()
