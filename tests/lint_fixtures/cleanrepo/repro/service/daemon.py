"""Clean counterpart of the protocol/fault fixture (never imported)."""

from repro.service import faults, protocol


def handle(message):
    if message.get("type") == protocol.MSG_SUBMIT:
        return protocol.envelope(protocol.MSG_ACK, job="j1")
    raise protocol.ProtocolError(protocol.ERR_BAD_REQUEST, "not a submit")


def inject(plan, workload):
    kind = plan.fire(faults.SITE_WORKER, workload)
    if kind == faults.FAULT_WORKER_EXCEPTION:
        raise RuntimeError(kind)
