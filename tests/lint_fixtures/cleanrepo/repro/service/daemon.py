"""Clean counterpart of the protocol fixture (never imported)."""

from repro.service import protocol


def handle(message):
    if message.get("type") == protocol.MSG_SUBMIT:
        return protocol.envelope(protocol.MSG_ACK, job="j1")
    raise protocol.ProtocolError(protocol.ERR_BAD_REQUEST, "not a submit")
