"""Clean counterpart of the retry fixture (never imported)."""

import queue


def fetch(client, attempts=3):
    last = None
    for _ in range(attempts):
        try:
            return client.request()
        except OSError as exc:
            last = exc
    raise last


def heartbeat(client, q):
    # A deliberately unbounded loop takes the inline opt-out; the
    # nested drain loop's except-continue belongs to the bounded
    # inner `for`, not to the outer `while True`.
    # repro-lint: disable=service-retry-bounded
    while True:
        for _ in range(8):
            try:
                client.send(q.get_nowait())
            except queue.Empty:
                continue
        if client.closed:
            return
