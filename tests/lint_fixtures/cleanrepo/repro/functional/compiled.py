"""Clean counterparts of the compiled-plan fixtures (never imported)."""

import numpy as np


def compile_op(width):
    scratch = np.zeros(width)  # compile-time allocation, closed over
    scratch.setflags(write=False)

    def plan(fw, active):
        return fw + scratch  # run loop owns the errstate context

    return plan
