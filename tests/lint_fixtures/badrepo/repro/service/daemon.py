"""Seeded violations for the protocol-vocabulary rule (never imported)."""

from repro.service import protocol


def handle(message):
    if message.get("type") == "submit":  # protocol-vocabulary (bare compare)
        return protocol.envelope("ack", job="j1")  # protocol-vocabulary (arg)
    raise protocol.ProtocolError("bad_request", "not a submit")  # (arg)
