"""Seeded violations for the protocol/fault vocabulary rules (never imported)."""

from repro.service import protocol


def handle(message):
    if message.get("type") == "submit":  # protocol-vocabulary (bare compare)
        return protocol.envelope("ack", job="j1")  # protocol-vocabulary (arg)
    raise protocol.ProtocolError("bad_request", "not a submit")  # (arg)


def inject(plan, workload):
    kind = plan.fire("worker", workload)  # fault-vocabulary (site arg)
    if kind == "worker-exception":  # fault-vocabulary (bare compare)
        raise RuntimeError(kind)
