"""Seeded violations for the service-retry-bounded rule (never imported)."""


def fetch(client):
    while True:  # service-retry-bounded (unbounded retry loop)
        try:
            return client.request()
        except OSError:
            continue


def swallow(client):
    try:
        return client.request()
    except:  # service-retry-bounded (bare except)
        return None
