"""Seeded violations for the compiled-plan rules (never imported)."""

import numpy as np


def compile_op(width):
    scratch = np.zeros(width)  # depth 1: compile-time, fine

    def plan(fw, active):
        with np.errstate(all="ignore"):  # errstate-in-plan
            tmp = np.zeros(width)  # alloc-in-plan
        return tmp + scratch

    return plan
