"""Seeded violations for the hot-path rules (never imported)."""

from dataclasses import dataclass


class PerCycleThing:  # hot-path-slots (no __slots__)
    def __init__(self, value):
        self.value = value


@dataclass
class PerCycleRecord:  # hot-path-slots (dataclass without slots=True)
    cycle: int = 0


class SlottedThing:
    __slots__ = ("value",)

    def __init__(self, value):
        self.value = value

    def poke(self):
        self.extra = 1  # slotted-attr-creation ('extra' not in __slots__)
