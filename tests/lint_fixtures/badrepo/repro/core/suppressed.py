"""Inline-suppression fixture: all findings here are excused."""

import time


def now():
    return time.time()  # repro-lint: disable=wall-clock


def later():
    # repro-lint: disable=wall-clock
    return time.time()


def remember(obj, table):
    # repro-lint: disable=all
    table[id(obj)] = obj
    return table
