"""Seeded violations for the registry rules (never imported)."""

from repro.core.policy import POLICIES


def record(origin, stats):
    if origin == "sbi":  # observer-vocabulary (bare literal compare)
        stats.record_issue("mad", 32, "swi")  # observer-vocabulary (arg)


def install(spec):
    POLICIES["mine"] = spec  # registry-discipline (subscript write)
    return POLICIES._entries  # registry-discipline (._entries access)
