"""Seeded violations for the determinism rules (never imported)."""

import random  # unseeded-random

import numpy as np


def draw():
    rng = np.random.default_rng()  # unseeded-random (no seed argument)
    noise = np.random.rand(4)  # unseeded-random (global RandomState)
    return random.choice([1, 2]), rng, noise


def now():
    import time

    return time.time()  # wall-clock


def visit(items):
    chosen = {3, 1, 2}
    for value in chosen:  # set-iteration (name bound to a set literal)
        yield value
    for value in set(items):  # set-iteration (direct set() call)
        yield value
    total = [v for v in {"a", "b"}]  # set-iteration (comprehension)
    return total


def remember(obj, table):
    table[id(obj)] = obj  # id-keyed-dict
    return table
