"""Seeded observer-vocabulary violations for analytics (never imported)."""


class Aggregator:
    def on_issue(self, event):
        if event.origin == "sbi":  # observer-vocabulary (bare literal compare)
            self.sbi += 1

    def on_mem(self, event, stats):
        stats.record_issue("mad", 32, "swi")  # observer-vocabulary (arg)
