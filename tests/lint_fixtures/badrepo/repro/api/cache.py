"""Seeded violations for the cache-key rules (never imported)."""

import json


def config_hash(payload):
    return json.dumps(payload, sort_keys=True, default=repr)  # repr-key


LATENCY_SCALE = {1.5: "slow", 2.0: "slower"}  # float-dict-key (x2)


def tweak(table):
    table[0.5] = "half"  # float-dict-key (subscript store)
    return table
