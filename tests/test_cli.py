"""End-to-end smoke tests of the ``repro`` CLI (via ``python -m repro``)."""

import json
import os
import subprocess
import sys

import pytest

REPO = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
SRC = os.path.join(REPO, "src")


def run_cli(*args, env_extra=None, check=True):
    env = dict(os.environ)
    env["PYTHONPATH"] = SRC + (
        os.pathsep + env["PYTHONPATH"] if env.get("PYTHONPATH") else ""
    )
    env.pop("REPRO_CACHE_DIR", None)
    env.update(env_extra or {})
    proc = subprocess.run(
        [sys.executable, "-m", "repro"] + list(args),
        capture_output=True,
        text=True,
        env=env,
        cwd=REPO,
    )
    if check and proc.returncode != 0:
        raise AssertionError(
            "repro %s failed (%d):\n%s" % (" ".join(args), proc.returncode, proc.stderr)
        )
    return proc


class TestAxisParsing:
    """Unit-level checks of the CLI helpers (no subprocess needed)."""

    def test_axis_value_types(self):
        from repro.cli import _parse_axis_value

        assert _parse_axis_value("4") == 4
        assert _parse_axis_value("2.5") == 2.5
        assert _parse_axis_value("none") is None
        assert _parse_axis_value("true") is True
        assert _parse_axis_value("False") is False
        assert _parse_axis_value("xor_rev") == "xor_rev"

    def test_boolean_axis_actually_flips_the_config(self):
        from repro.api import SweepSpec
        from repro.cli import _parse_axes

        axes = _parse_axes(["sbi_constraints=true,false"])
        spec = SweepSpec(
            workloads=["bfs"], configs=["sbi"], sizes="tiny"
        ).with_axes(**axes)
        assert spec.configs["sbi/sbi_constraints=False"].sbi_constraints is False
        assert spec.configs["sbi/sbi_constraints=True"].sbi_constraints is True

    def test_multi_size_render(self):
        from repro.api import Result, ResultSet
        from repro.cli import _render
        from repro.timing.stats import Stats

        rs = ResultSet(
            [
                Result("bfs", "tiny", "baseline", Stats(cycles=10, thread_instructions=100)),
                Result("bfs", "bench", "baseline", Stats(cycles=10, thread_instructions=200)),
            ]
        )
        text = _render(rs, "table", "ipc")
        assert "== size=tiny ==" in text and "== size=bench ==" in text
        md = _render(rs, "markdown", "ipc")
        assert "### size=tiny" in md and "### size=bench" in md
        payload = json.loads(_render(rs, "json", "ipc"))
        assert payload["tiny"]["bfs"]["baseline"] == 10.0
        assert payload["bench"]["bfs"]["baseline"] == 20.0
        csv_text = _render(rs, "csv", "ipc")
        assert csv_text.count("\n") == 3  # header + 2 rows

    def test_csv_render_honours_metric(self):
        from repro.api import Result, ResultSet
        from repro.cli import _render
        from repro.timing.stats import Stats

        rs = ResultSet(
            [Result("bfs", "tiny", "baseline", Stats(cycles=10, busy_cycles=7))]
        )
        assert "busy_cycles" in _render(rs, "csv", "busy_cycles").splitlines()[0]


class TestWorkloads:
    def test_plain_listing(self):
        out = run_cli("workloads").stdout
        assert "bfs" in out and "matrixmul" in out and "irregular" in out

    def test_json_listing(self):
        infos = json.loads(run_cli("workloads", "--json").stdout)
        assert len(infos) == 21
        byname = {i["name"]: i for i in infos}
        assert byname["tmd1"]["mean_excluded"] is True
        assert byname["bfs"]["category"] == "irregular"

    def test_category_filter(self):
        infos = json.loads(
            run_cli("workloads", "--json", "--category", "regular").stdout
        )
        assert len(infos) == 10


class TestSweep:
    def test_json_output_and_cache_accounting(self, tmp_path):
        cache = {"REPRO_CACHE_DIR": str(tmp_path)}
        args = (
            "sweep",
            "--workloads", "histogram",
            "--configs", "baseline,warp64",
            "--size", "smoke",
            "--format", "json",
        )
        cold = run_cli(*args, env_extra=cache)
        table = json.loads(cold.stdout)
        assert set(table["histogram"]) == {"baseline", "warp64"}
        assert "# 2 cells: 2 simulated, 0 cached" in cold.stderr
        warm = run_cli(*args, env_extra=cache)
        assert "# 2 cells: 0 simulated, 2 cached" in warm.stderr
        assert json.loads(warm.stdout) == table

    def test_axis_sweep(self):
        proc = run_cli(
            "sweep",
            "--workloads", "histogram",
            "--configs", "baseline",
            "--size", "smoke",
            "--axis", "sm_count=1,2",
            "--format", "json",
        )
        table = json.loads(proc.stdout)
        assert set(table["histogram"]) == {
            "baseline/sm_count=1",
            "baseline/sm_count=2",
        }

    def test_output_file_and_csv(self, tmp_path):
        out = str(tmp_path / "table.csv")
        run_cli(
            "sweep",
            "--workloads", "histogram",
            "--configs", "baseline",
            "--size", "smoke",
            "--format", "csv",
            "--output", out,
        )
        with open(out) as f:
            text = f.read()
        assert text.startswith("workload,size,config,")
        assert "histogram,tiny,baseline," in text

    def test_save_writes_reloadable_resultset(self, tmp_path):
        from repro.api import ResultSet

        path = str(tmp_path / "rs.json")
        run_cli(
            "sweep",
            "--workloads", "histogram",
            "--configs", "baseline",
            "--size", "smoke",
            "--save", path,
        )
        rs = ResultSet.from_json(path)
        assert len(rs) == 1
        assert rs.get("histogram", "baseline", size="tiny").ipc > 0

    def test_unknown_workload_fails_helpfully(self):
        proc = run_cli("sweep", "--workloads", "nope", check=False)
        assert proc.returncode == 2
        assert "unknown workload" in proc.stderr and "bfs" in proc.stderr

    def test_unknown_size_fails_helpfully(self):
        proc = run_cli(
            "sweep", "--workloads", "bfs", "--size", "huge", check=False
        )
        assert proc.returncode == 2
        assert "smoke" in proc.stderr

    def test_unknown_metric_fails_before_simulating(self):
        # bench size would take minutes if the sweep ran; the early
        # metric validation must reject the typo in well under that.
        proc = run_cli(
            "sweep",
            "--workloads", "all",
            "--configs", "baseline",
            "--size", "bench",
            "--metric", "ipcs",
            check=False,
        )
        assert proc.returncode == 2
        assert "unknown metric" in proc.stderr and "ipc" in proc.stderr


class TestFigure7:
    def test_restricted_grid_markdown(self, tmp_path):
        proc = run_cli(
            "figure7",
            "--size", "smoke",
            "--workloads", "histogram,bfs",
            "--format", "markdown",
            env_extra={"REPRO_CACHE_DIR": str(tmp_path)},
        )
        lines = proc.stdout.splitlines()
        assert lines[0] == "| workload | baseline | sbi | swi | sbi_swi | warp64 |"
        assert any(line.startswith("| histogram |") for line in lines)
        assert "# 10 cells: 10 simulated, 0 cached" in proc.stderr


class TestPolicies:
    def test_plain_listing(self):
        proc = run_cli("policies")
        for name in ("baseline", "sbi_swi", "swi_greedy", "swi_rr", "dwr"):
            assert name in proc.stdout
        assert "cascaded" in proc.stderr  # scheduler catalogue footer

    def test_json_listing(self):
        specs = json.loads(run_cli("policies", "--json").stdout)
        byname = {s["name"]: s for s in specs}
        assert byname["dwr"]["divergence"] == "dwr"
        assert byname["swi_rr"]["scheduler"] == "cascaded_rr"
        assert byname["sbi"]["hot_capacity"] == 2

    def test_describe_one(self):
        proc = run_cli("policies", "dwr")
        assert "divergence=dwr" in proc.stdout
        assert "preset" in proc.stdout

    def test_unknown_policy_fails_helpfully(self):
        proc = run_cli("policies", "nope", check=False)
        assert proc.returncode == 2
        assert "unknown policy" in proc.stderr and "baseline" in proc.stderr

    def test_plugin_module_registers_policy(self, tmp_path):
        plugin = tmp_path / "cli_test_plugin.py"
        plugin.write_text(
            "from repro.core.policy import PolicySpec, register_policy\n"
            "register_policy(PolicySpec(\n"
            "    name='plugtest', scheduler='single_issue',\n"
            "    divergence='frontier', issue_width=1,\n"
            "    preset=dict(warp_count=16, warp_width=64)))\n"
        )
        env = {"PYTHONPATH": str(tmp_path) + os.pathsep + SRC}
        proc = run_cli("policies", "--plugin", "cli_test_plugin", env_extra=env)
        assert "plugtest" in proc.stdout

    def test_sweep_policy_axis(self):
        proc = run_cli(
            "sweep",
            "--workloads", "histogram",
            "--configs", "baseline",
            "--size", "smoke",
            "--policy", "warp64,swi_greedy",
            "--format", "json",
        )
        table = json.loads(proc.stdout)
        assert set(table["histogram"]) == {
            "baseline/policy=warp64",
            "baseline/policy=swi_greedy",
        }

    def test_policy_axis_composes_with_field_axes(self):
        """--axis overrides must apply on top of the policy preset, not
        be wiped by it (the policy axis expands first)."""
        proc = run_cli(
            "sweep",
            "--workloads", "histogram",
            "--configs", "baseline",
            "--size", "smoke",
            "--policy", "warp64",
            "--axis", "warp_count=8,16",
            "--format", "json",
        )
        table = json.loads(proc.stdout)
        assert set(table["histogram"]) == {
            "baseline/policy=warp64/warp_count=8",
            "baseline/policy=warp64/warp_count=16",
        }
        # The configs must actually differ: identical configs would
        # alias to one unique cell in the accounting line.
        assert "# 2 cells: 2 simulated" in proc.stderr


class TestMerge:
    def _save(self, tmp_path, name, workload):
        path = str(tmp_path / name)
        run_cli(
            "sweep",
            "--workloads", workload,
            "--configs", "baseline",
            "--size", "smoke",
            "--save", path,
        )
        return path

    def test_merge_combines_resultsets(self, tmp_path):
        from repro.api import ResultSet

        a = self._save(tmp_path, "a.json", "histogram")
        b = self._save(tmp_path, "b.json", "sortingnetworks")
        out = str(tmp_path / "merged.json")
        proc = run_cli("merge", a, b, "--save", out)
        assert "# merged 2 files -> 2 cells" in proc.stderr
        merged = ResultSet.from_json(out)
        assert set(merged.workloads) == {"histogram", "sortingnetworks"}
        assert proc.stdout == ""  # --save alone stays script-quiet
        proc = run_cli("merge", a, b)  # bare merge renders a table
        assert "histogram" in proc.stdout
        proc = run_cli("merge", a, b, "--save", out, "--format", "markdown")
        assert "| histogram |" in proc.stdout

    def test_merge_idempotent_on_duplicates(self, tmp_path):
        a = self._save(tmp_path, "a.json", "histogram")
        proc = run_cli("merge", a, a)
        assert "# merged 2 files -> 1 cells" in proc.stderr

    def test_merge_conflict_policy(self, tmp_path):
        import json as _json

        a = self._save(tmp_path, "a.json", "histogram")
        with open(a) as f:
            payload = _json.load(f)
        payload["results"][0]["stats"]["data"]["cycles"] += 1
        b = str(tmp_path / "b.json")
        with open(b, "w") as f:
            _json.dump(payload, f)
        proc = run_cli("merge", a, b, check=False)
        assert proc.returncode == 2
        assert "conflicting results" in proc.stderr
        proc = run_cli("merge", a, b, "--on-conflict", "keep")
        assert proc.returncode == 0


class TestCache:
    def test_info_and_clear(self, tmp_path):
        cache = {"REPRO_CACHE_DIR": str(tmp_path)}
        run_cli(
            "sweep", "--workloads", "histogram", "--configs", "baseline",
            "--size", "smoke", env_extra=cache,
        )
        info = run_cli("cache", "info", env_extra=cache).stdout
        assert "1 entries" in info
        cleared = run_cli("cache", "clear", env_extra=cache).stdout
        assert "1 entries" in cleared
        info = run_cli("cache", "info", env_extra=cache).stdout
        assert "0 entries" in info

    def test_info_without_dir(self):
        out = run_cli("cache", "info").stdout
        assert "disabled" in out


class TestBench:
    """The perf-smoke entry point (`repro bench`) and its artifact."""

    ARGS = ("bench", "--workloads", "histogram", "--modes", "baseline,warp64")

    def test_artifact_schema(self, tmp_path):
        from repro.bench import SCHEMA_VERSION

        out = str(tmp_path / "BENCH_speed.json")
        proc = run_cli(*self.ARGS, "--json", out)
        assert "wrote %s" % out in proc.stderr
        with open(out) as f:
            artifact = json.load(f)
        assert artifact["schema"] == SCHEMA_VERSION
        assert artifact["cells"] == 2
        assert set(artifact["per_mode"]) == {"baseline", "warp64"}
        for key in ("cells_per_sec", "cycles_per_sec", "wall_seconds", "sim_cycles"):
            assert artifact[key] > 0
        # Without --json the artifact goes to stdout instead.
        bare = run_cli(*self.ARGS)
        assert json.loads(bare.stdout)["cells"] == 2

    def test_check_passes_against_slower_baseline(self, tmp_path):
        out = str(tmp_path / "fresh.json")
        run_cli(*self.ARGS, "--json", out)
        with open(out) as f:
            baseline = json.load(f)
        baseline["cells_per_sec"] /= 10  # trivially beatable
        base = str(tmp_path / "base.json")
        with open(base, "w") as f:
            json.dump(baseline, f)
        proc = run_cli(*self.ARGS, "--check", base)
        assert "perf check passed" in proc.stderr

    def test_check_fails_against_impossible_baseline(self, tmp_path):
        out = str(tmp_path / "fresh.json")
        run_cli(*self.ARGS, "--json", out)
        with open(out) as f:
            baseline = json.load(f)
        baseline["cells_per_sec"] *= 1e6
        base = str(tmp_path / "base.json")
        with open(base, "w") as f:
            json.dump(baseline, f)
        proc = run_cli(*self.ARGS, "--check", base, check=False)
        assert proc.returncode == 1
        assert "cells/sec regressed" in proc.stderr

    def test_check_rejects_mismatched_matrix(self, tmp_path):
        from repro import bench

        fresh = {"schema": 1, "matrix": "custom", "size": "tiny",
                 "compiled": True, "cells_per_sec": 10.0}
        base = {"schema": 1, "matrix": "figure7", "size": "tiny",
                "compiled": True, "cells_per_sec": 10.0}
        problems = bench.check_regression(fresh, base)
        assert problems and "not comparable" in problems[0]

    def test_check_rejects_malformed_baseline(self):
        from repro import bench

        fresh = {"schema": 1, "matrix": "figure7", "size": "tiny",
                 "compiled": True, "cells_per_sec": 10.0}
        for bad in ({}, {"schema": 99, "cells_per_sec": 5.0},
                    {"schema": 1, "cells_per_sec": "fast"}):
            problems = bench.check_regression(fresh, bad)
            assert problems and "schema" in problems[0]

    def test_json_refresh_preserves_reference_block(self, tmp_path):
        out = str(tmp_path / "BENCH_speed.json")
        run_cli(*self.ARGS, "--json", out)
        with open(out) as f:
            artifact = json.load(f)
        artifact["pre_pr_reference"] = {"wall_seconds": 99.0}
        with open(out, "w") as f:
            json.dump(artifact, f)
        run_cli(*self.ARGS, "--json", out)  # refresh in place
        with open(out) as f:
            refreshed = json.load(f)
        assert refreshed["pre_pr_reference"] == {"wall_seconds": 99.0}
        assert refreshed["cells_per_sec"] != artifact["cells_per_sec"]

    def test_artifact_records_host_metadata(self, tmp_path):
        out = str(tmp_path / "BENCH_speed.json")
        run_cli(*self.ARGS, "--json", out)
        with open(out) as f:
            artifact = json.load(f)
        host = artifact["host"]
        import platform

        assert host["python"] == platform.python_version()
        assert host["machine"] == platform.machine()
        assert isinstance(host["cpu_count"], int)

    def test_json_refresh_annotates_speedup(self, tmp_path):
        out = str(tmp_path / "BENCH_speed.json")
        run_cli(*self.ARGS, "--json", out)
        with open(out) as f:
            artifact = json.load(f)
        artifact["pre_pr_reference"] = {"cells_per_sec": artifact["cells_per_sec"] / 2}
        with open(out, "w") as f:
            json.dump(artifact, f)
        run_cli(*self.ARGS, "--json", out)
        with open(out) as f:
            refreshed = json.load(f)
        expected = refreshed["cells_per_sec"] / artifact["pre_pr_reference"]["cells_per_sec"]
        assert refreshed["speedup_vs_reference"] == pytest.approx(expected)

    def test_speedup_omitted_without_reference(self):
        from repro import bench

        result = {"cells_per_sec": 10.0}
        bench.annotate_speedup(result)
        assert "speedup_vs_reference" not in result
        result["pre_pr_reference"] = {"cells_per_sec": 0.0}
        bench.annotate_speedup(result)
        assert "speedup_vs_reference" not in result

    def test_profile_flag_writes_pstats(self, tmp_path):
        import pstats

        pout = str(tmp_path / "bench.pstats")
        proc = run_cli(*self.ARGS, "--profile", "5", "--profile-out", pout)
        assert "cumulative" in proc.stderr
        stats = pstats.Stats(pout)
        assert stats.total_calls > 0

    def test_repeat_must_be_positive(self):
        from repro import bench

        with pytest.raises(ValueError, match="repeat"):
            bench.run_bench(repeat=0, workloads=["histogram"], modes=["baseline"])


class TestAnalyze:
    def test_smoke_renders_all_aggregators(self):
        proc = run_cli(
            "analyze",
            "--workload", "histogram",
            "--size", "smoke",
            "--config", "sbi_swi",
            "--bins", "8",
        )
        for header in ("== timeline ==", "== heatmap ==", "== origins =="):
            assert header in proc.stdout
        assert "peak-issue check: ok" in proc.stderr

    def test_json_artifact_round_trips_schema(self, tmp_path):
        path = str(tmp_path / "analyze.json")
        run_cli(
            "analyze",
            "--workload", "transpose",
            "--size", "tiny",
            "--config", "sbi_swi",
            "--sm-count", "4",
            "--bins", "8",
            "--json", path,
        )
        with open(path) as f:
            artifact = json.load(f)
        assert artifact["version"] == 1
        assert artifact["workload"] == "transpose"
        assert artifact["sm_count"] == 4
        assert set(artifact["observers"]) == {"timeline", "heatmap", "origins"}
        timeline = artifact["observers"]["timeline"]
        assert timeline["kind"] == "timeline"
        assert len(timeline["series"]["issues"]) == timeline["bins"]
        heatmap = artifact["observers"]["heatmap"]
        assert heatmap["sms"] == [0, 1, 2, 3]
        assert len(heatmap["ipc"]) == len(heatmap["sms"])
        # The artifact feeds back into the hwcost validation unchanged.
        sys.path.insert(0, SRC)
        try:
            from repro.core import presets
            from repro.hwcost import validate_peak_issue

            origins = artifact["observers"]["origins"]
            device = presets.device("sbi_swi", sm_count=4)
            assert validate_peak_issue(device, origins)
        finally:
            sys.path.remove(SRC)

    def test_unknown_observer_fails_helpfully(self):
        proc = run_cli(
            "analyze", "--workload", "bfs", "--observers", "nope", check=False
        )
        assert proc.returncode == 2
        assert "registered names" in proc.stderr

    def test_sweep_observer_renders_and_simulates(self, tmp_path):
        cache = {"REPRO_CACHE_DIR": str(tmp_path)}
        args = (
            "sweep",
            "--workloads", "histogram",
            "--configs", "sbi_swi",
            "--size", "smoke",
        )
        run_cli(*args, env_extra=cache)
        observed = run_cli(*args, "--observer", "origins", env_extra=cache)
        # Observed cells bypass the warm cache and simulate again.
        assert "# 1 cells: 1 simulated, 0 cached" in observed.stderr
        assert "== histogram/sbi_swi @tiny : origins ==" in observed.stdout  # smoke->tiny alias
        assert "issue origins" in observed.stdout
