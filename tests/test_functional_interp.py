"""Reference interpreter: scheduling, merging, barriers, accounting."""

import numpy as np
import pytest

from repro.functional import MemoryImage, run_kernel
from repro.functional.interp import InterpreterError, InterpResult
from repro.isa import CmpOp, KernelBuilder, MemSpace


def _store_tid_kernel(cta=64, grid=2):
    kb = KernelBuilder("ids")
    t, a = kb.regs("t", "a")
    kb.mov(t, kb.tid)
    kb.mad(t, kb.ctaid, kb.ntid, t)
    kb.mul(a, t, 4)
    kb.st(kb.param(0), t, index=a)
    kb.exit_()
    return kb.build(cta_size=cta, grid_size=grid, params=(0.0,))


class TestBasics:
    def test_thread_ids(self):
        mem = MemoryImage()
        out = mem.alloc(128 * 4)
        kernel = _store_tid_kernel().with_params(float(out))
        run_kernel(kernel, mem)
        np.testing.assert_array_equal(mem.read_array(out, 128), np.arange(128))

    def test_instruction_accounting(self):
        mem = MemoryImage()
        out = mem.alloc(128 * 4)
        kernel = _store_tid_kernel().with_params(float(out))
        result = run_kernel(kernel, mem)
        # 5 instructions x 128 threads, executed warp-wide.
        assert result.thread_instructions == 5 * 128
        assert result.instructions == 5 * 4  # 4 warps of 32
        assert result.per_op_class["lsu"] == 128

    def test_divergence_counted(self):
        kb = KernelBuilder("div")
        t, p, v = kb.regs("t", "p", "v")
        kb.mov(t, kb.tid)
        kb.and_(p, t, 1)
        kb.bra("x", cond=p)
        kb.mov(v, 1)
        kb.label("x")
        kb.exit_()
        result = run_kernel(kb.build(cta_size=32, grid_size=1), MemoryImage())
        assert result.branches == 1
        assert result.divergent_branches == 1

    def test_warp_width_parameter(self):
        mem = MemoryImage()
        out = mem.alloc(128 * 4)
        kernel = _store_tid_kernel().with_params(float(out))
        result = run_kernel(kernel, mem, warp_width=8)
        assert result.instructions == 5 * 16  # 16 warps of 8
        np.testing.assert_array_equal(mem.read_array(out, 128), np.arange(128))

    def test_infinite_loop_detected(self):
        kb = KernelBuilder("inf")
        kb.label("l")
        kb.nop()
        kb.bra("l")
        kernel = kb.build(cta_size=32, grid_size=1)
        with pytest.raises(InterpreterError, match="steps"):
            run_kernel(kernel, MemoryImage(), max_steps=100)


class TestMergingAndBarriers:
    def test_reconverged_threads_execute_together(self):
        # After the if/else joins, the tail should execute once per
        # warp, not once per path.
        kb = KernelBuilder("merge")
        t, p, v = kb.regs("t", "p", "v")
        kb.mov(t, kb.tid)
        kb.and_(p, t, 1)
        kb.bra("e", cond=p)
        kb.mov(v, 1)
        kb.bra("j")
        kb.label("e")
        kb.mov(v, 2)
        kb.label("j")
        kb.nop()  # tail marker
        kb.exit_()
        result = run_kernel(kb.build(cta_size=32, grid_size=1), MemoryImage())
        from repro.isa.instructions import Op

        # One warp: the tail NOP must have executed exactly once
        # (merged): prologue mov/and/bra (3) + then-path mov/bra (2) +
        # else-path mov (1) + nop (1) + exit (1).
        assert result.instructions == 3 + 2 + 1 + 1 + 1

    def test_barrier_orders_shared_memory(self):
        kb = KernelBuilder("bar")
        t, v, a = kb.regs("t", "v", "a")
        kb.mov(t, kb.tid)
        kb.mul(a, t, 4)
        kb.st(0, t, index=a, space=MemSpace.SHARED)
        kb.bar()
        kb.sub(v, 63, t)  # read the mirrored slot
        kb.mul(a, v, 4)
        kb.ld(v, 0, index=a, space=MemSpace.SHARED)
        kb.mul(a, t, 4)
        kb.st(kb.param(0), v, index=a)
        kb.exit_()
        mem = MemoryImage()
        out = mem.alloc(64 * 4)
        kernel = kb.build(
            cta_size=64, grid_size=1, params=(out,), shared_bytes=64 * 4
        )
        run_kernel(kernel, mem)
        np.testing.assert_array_equal(
            mem.read_array(out, 64), 63 - np.arange(64)
        )

    def test_data_dependent_loop_trip_counts(self):
        kb = KernelBuilder("trips")
        t, c, acc, p, a = kb.regs("t", "c", "acc", "p", "a")
        kb.mov(t, kb.tid)
        kb.and_(c, t, 7)
        kb.mov(acc, 0)
        kb.label("l")
        kb.add(acc, acc, 1)
        kb.sub(c, c, 1)
        kb.setp(p, CmpOp.GE, c, 0)
        kb.bra("l", cond=p)
        kb.mul(a, t, 4)
        kb.st(kb.param(0), acc, index=a)
        kb.exit_()
        mem = MemoryImage()
        out = mem.alloc(64 * 4)
        kernel = kb.build(cta_size=64, grid_size=1, params=(out,))
        run_kernel(kernel, mem)
        np.testing.assert_array_equal(
            mem.read_array(out, 64), (np.arange(64) % 8) + 1
        )

    def test_partial_cta(self):
        mem = MemoryImage()
        out = mem.alloc(64 * 4)
        kernel = _store_tid_kernel(cta=40, grid=1).with_params(float(out))
        run_kernel(kernel, mem)
        np.testing.assert_array_equal(mem.read_array(out, 40), np.arange(40))
        assert np.all(mem.read_array(out + 40 * 4, 24) == 0)
