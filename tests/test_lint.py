"""Tests for the reprolint static-analysis suite.

Each rule gets one positive assertion (the seeded violation in
``tests/lint_fixtures/badrepo`` is flagged) and one negative (the clean
counterpart in ``tests/lint_fixtures/cleanrepo`` passes).  The fixture
trees mirror the package layout so path-scoped rules apply via the
suffix matching in :func:`repro.lint.framework._match`.
"""

import json
import os

import pytest

import repro
from repro.lint import fingerprint
from repro.lint.framework import LintReport, Violation, all_rules
from repro.lint.runner import collect_files, main, run_lint

HERE = os.path.dirname(os.path.abspath(__file__))
BAD = os.path.join(HERE, "lint_fixtures", "badrepo")
CLEAN = os.path.join(HERE, "lint_fixtures", "cleanrepo")


def lint_one(root, rel, rule_id):
    path = os.path.join(root, *rel.split("/"))
    assert os.path.isfile(path), path
    return run_lint([path], rule_ids=frozenset({rule_id}))


# ----------------------------------------------------------------------
# File-scoped rules: positive + negative per rule
# ----------------------------------------------------------------------

FILE_RULE_CASES = [
    ("unseeded-random", "repro/core/determinism.py"),
    ("wall-clock", "repro/core/determinism.py"),
    ("set-iteration", "repro/core/determinism.py"),
    ("id-keyed-dict", "repro/core/determinism.py"),
    ("repr-key", "repro/api/cache.py"),
    ("float-dict-key", "repro/api/cache.py"),
    ("hot-path-slots", "repro/timing/hot.py"),
    ("slotted-attr-creation", "repro/timing/hot.py"),
    ("errstate-in-plan", "repro/functional/compiled.py"),
    ("alloc-in-plan", "repro/functional/compiled.py"),
    ("observer-vocabulary", "repro/core/schedulers.py"),
    ("observer-vocabulary", "repro/analytics/aggregator.py"),
    ("protocol-vocabulary", "repro/service/daemon.py"),
    ("fault-vocabulary", "repro/service/daemon.py"),
    ("service-retry-bounded", "repro/service/retry.py"),
    ("registry-discipline", "repro/core/schedulers.py"),
]


@pytest.mark.parametrize("rule_id,rel", FILE_RULE_CASES)
def test_rule_flags_seeded_violation(rule_id, rel):
    report = lint_one(BAD, rel, rule_id)
    hits = [v for v in report.violations if v.rule == rule_id]
    assert hits, "expected %s finding in %s" % (rule_id, rel)
    assert not report.ok
    for v in hits:
        assert v.line > 0
        assert v.message


@pytest.mark.parametrize("rule_id,rel", FILE_RULE_CASES)
def test_rule_passes_clean_counterpart(rule_id, rel):
    report = lint_one(CLEAN, rel, rule_id)
    assert [v for v in report.violations if v.rule == rule_id] == []


def test_alloc_in_plan_ignores_compile_time_allocation():
    # np.zeros at function depth 1 (compile time) must not be flagged;
    # only the allocation inside the nested plan closure is.
    report = lint_one(BAD, "repro/functional/compiled.py", "alloc-in-plan")
    assert len(report.violations) == 1
    assert report.violations[0].line == 11


def test_registry_discipline_allows_registry_module_itself(tmp_path):
    pkg = tmp_path / "repro" / "core" / "policy"
    pkg.mkdir(parents=True)
    target = pkg / "registry.py"
    target.write_text("class Registry:\n    def register(self, n, v):\n        self._entries[n] = v\n")
    report = run_lint([str(target)], rule_ids=frozenset({"registry-discipline"}))
    assert report.ok


# ----------------------------------------------------------------------
# Suppression
# ----------------------------------------------------------------------


def test_inline_suppression_same_line_line_above_and_all():
    report = lint_one(BAD, "repro/core/suppressed.py", "wall-clock")
    assert report.violations == []
    assert report.suppressed == 2  # same-line + line-above forms
    report = lint_one(BAD, "repro/core/suppressed.py", "id-keyed-dict")
    assert report.violations == []
    assert report.suppressed == 1  # disable=all on the line above


def test_path_suppression_table():
    from repro.lint.framework import is_suppressed, path_suppressed

    # Benchmarks and examples may read the wall clock; the core cannot.
    assert path_suppressed("wall-clock", "benchmarks/run_sweep.py")
    assert path_suppressed("wall-clock", "src/repro/bench.py")
    assert not path_suppressed("wall-clock", "src/repro/core/sm.py")
    v = Violation(
        rule="wall-clock", path="examples/demo.py", line=1, col=1, message="m"
    )
    assert is_suppressed(v, {})


def test_path_suppression_honoured_by_runner(monkeypatch):
    from repro.lint.config import PATH_SUPPRESSIONS

    bad = os.path.join(BAD, "repro", "core", "determinism.py")
    report = run_lint([bad], rule_ids=frozenset({"wall-clock"}))
    assert not report.ok
    monkeypatch.setitem(
        PATH_SUPPRESSIONS,
        "wall-clock",
        PATH_SUPPRESSIONS["wall-clock"] + ("repro/core/determinism.py",),
    )
    report = run_lint([bad], rule_ids=frozenset({"wall-clock"}))
    assert report.ok
    assert report.suppressed >= 1


# ----------------------------------------------------------------------
# Project rules: cache-key-fields and config-fingerprint
# ----------------------------------------------------------------------


def test_cache_key_fields_clean_on_live_configs():
    report = run_lint([], rule_ids=frozenset({"cache-key-fields"}))
    assert report.ok, report.format()


def test_cache_key_fields_detects_key_blind_to_mutation(monkeypatch):
    import repro.api.cache as cache

    monkeypatch.setattr(cache, "config_hash", lambda cfg: "constant")
    report = run_lint([], rule_ids=frozenset({"cache-key-fields"}))
    assert not report.ok
    assert any("does not flow into the cache key" in v.message for v in report.violations)


def test_config_fingerprint_committed_and_current():
    report = run_lint([], rule_ids=frozenset({"config-fingerprint"}))
    assert report.ok, report.format()


def test_config_fingerprint_missing(monkeypatch):
    monkeypatch.setattr(fingerprint, "load_committed", lambda path=None: None)
    report = run_lint([], rule_ids=frozenset({"config-fingerprint"}))
    assert not report.ok
    assert "no committed config fingerprint" in report.violations[0].message


def test_config_fingerprint_drift_without_version_bump(monkeypatch):
    committed = fingerprint.load_committed()
    assert committed is not None
    tampered = dict(committed)
    tampered["digest"] = "0" * 64
    monkeypatch.setattr(fingerprint, "load_committed", lambda path=None: tampered)
    report = run_lint([], rule_ids=frozenset({"config-fingerprint"}))
    assert not report.ok
    assert "CACHE_VERSION is still" in report.violations[0].message


def test_config_fingerprint_stale_version(monkeypatch):
    committed = fingerprint.load_committed()
    tampered = dict(committed)
    tampered["digest"] = "0" * 64
    tampered["cache_version"] = -1
    monkeypatch.setattr(fingerprint, "load_committed", lambda path=None: tampered)
    report = run_lint([], rule_ids=frozenset({"config-fingerprint"}))
    assert not report.ok
    assert "stale" in report.violations[0].message


def test_update_fingerprint_regenerates(monkeypatch):
    written = []
    monkeypatch.setattr(
        fingerprint, "write_committed", lambda path=fingerprint.DATA_FILE: written.append(path) or {}
    )
    report = run_lint(
        [], update_fingerprint=True, rule_ids=frozenset({"config-fingerprint"})
    )
    assert report.ok
    assert written == [fingerprint.DATA_FILE]


def test_write_committed_round_trips(tmp_path):
    target = str(tmp_path / "fp.json")
    payload = fingerprint.write_committed(target)
    loaded = fingerprint.load_committed(target)
    assert loaded == payload
    assert loaded["digest"] == fingerprint.digest(loaded)
    # ... and the checked-in fingerprint matches the live schema.
    committed = fingerprint.load_committed()
    assert committed["digest"] == payload["digest"]
    assert committed["cache_version"] == payload["cache_version"]


# ----------------------------------------------------------------------
# Runner, report and CLI plumbing
# ----------------------------------------------------------------------


def test_syntax_error_reported_not_fatal(tmp_path):
    broken = tmp_path / "broken.py"
    broken.write_text("def broken(:\n")
    report = run_lint([str(broken)], rule_ids=frozenset({"wall-clock"}))
    assert [v.rule for v in report.violations] == ["syntax-error"]


def test_collect_files_sorted_and_deduped(tmp_path):
    (tmp_path / "b.py").write_text("")
    (tmp_path / "a.py").write_text("")
    (tmp_path / "__pycache__").mkdir()
    (tmp_path / "__pycache__" / "a.py").write_text("")
    files = collect_files([str(tmp_path), str(tmp_path / "a.py")])
    assert files == [str(tmp_path / "a.py"), str(tmp_path / "b.py")]


def test_report_to_dict_shape():
    report = lint_one(BAD, "repro/core/determinism.py", "wall-clock")
    data = report.to_dict()
    assert data["ok"] is False
    assert data["files_checked"] == 1
    assert data["counts"].get("wall-clock", 0) >= 1
    assert "wall-clock" in data["rules"]
    v = data["violations"][0]
    assert set(v) == {"rule", "path", "line", "col", "message", "hint"}
    json.dumps(data)  # machine-readable means JSON-serialisable


def test_report_format_mentions_counts():
    report = LintReport(
        violations=[
            Violation(rule="wall-clock", path="x.py", line=3, col=1, message="m", hint="h")
        ],
        files_checked=1,
    )
    text = report.format()
    assert "x.py:3:1: [wall-clock] m" in text
    assert "hint: h" in text
    assert "1 file checked: 1 violation (0 suppressed)" in text


def test_every_rule_has_metadata():
    rules = all_rules()
    assert len(rules) >= 14
    for rule in rules:
        assert rule.id and rule.category and rule.description
        assert rule.hint, "rule %s has no fix-it hint" % rule.id


def test_cli_exit_codes(tmp_path, capsys):
    clean = os.path.join(CLEAN, "repro", "core", "determinism.py")
    bad = os.path.join(BAD, "repro", "core", "determinism.py")
    assert main([clean, "--rule", "wall-clock"]) == 0
    assert main([bad, "--rule", "wall-clock"]) == 1
    assert main([bad, "--rule", "no-such-rule"]) == 2
    err = capsys.readouterr().err
    assert "unknown rule id" in err


def test_cli_json_output(capsys):
    bad = os.path.join(BAD, "repro", "core", "determinism.py")
    assert main([bad, "--rule", "wall-clock", "--json"]) == 1
    data = json.loads(capsys.readouterr().out)
    assert data["ok"] is False
    assert data["counts"]["wall-clock"] >= 1


def test_cli_list_rules(capsys):
    assert main(["--list-rules"]) == 0
    out = capsys.readouterr().out
    for rule in all_rules():
        assert rule.id in out


def test_repro_cli_exposes_lint(capsys):
    from repro.cli import main as repro_main

    clean = os.path.join(CLEAN, "repro", "core", "determinism.py")
    assert repro_main(["lint", clean, "--rule", "wall-clock"]) == 0
    assert repro_main(["lint", clean, "--rule", "bogus"]) == 2
    capsys.readouterr()


def test_installed_package_is_lint_clean():
    pkg = os.path.dirname(os.path.abspath(repro.__file__))
    report = run_lint([pkg])
    assert report.ok, report.format()
