"""Semantics of every opcode in the vectorised executor."""

import numpy as np
import pytest

from repro.functional.executor import Executor, FunctionalWarp
from repro.functional.memory import MemoryImage, SharedMemory
from repro.isa.builder import Kernel, KernelBuilder
from repro.isa.instructions import CmpOp, Instruction, MemSpace, Op, imm, reg, special
from repro.isa.program import Program

W = 8


@pytest.fixture
def env():
    memory = MemoryImage(1 << 16)
    prog = Program([Instruction(Op.EXIT)])
    kernel = Kernel("t", prog, cta_size=W, grid_size=1, params=(2.0, 3.0), nregs=8)
    executor = Executor(kernel, memory)
    warp = FunctionalWarp(
        warp_id=1,
        width=W,
        nregs=8,
        tids_in_cta=np.arange(W),
        cta_index=0,
        shared=SharedMemory(256),
    )
    mask = np.ones(W, dtype=bool)
    return executor, warp, mask, memory


def run_op(env, op, *srcs, dst=0, cmp=None, **kw):
    executor, warp, mask, _ = env
    instr = Instruction(op, dst=dst, srcs=srcs, cmp=cmp, **kw)
    executor.execute(instr, warp, mask)
    return warp.regs[dst]


class TestArithmetic:
    def test_mov_imm(self, env):
        out = run_op(env, Op.MOV, imm(7))
        assert np.all(out == 7)

    def test_add_sub_mul(self, env):
        _, warp, _, _ = env
        warp.regs[1] = np.arange(W)
        assert np.array_equal(run_op(env, Op.ADD, reg(1), imm(2)), np.arange(W) + 2)
        assert np.array_equal(run_op(env, Op.SUB, reg(1), imm(1)), np.arange(W) - 1)
        assert np.array_equal(run_op(env, Op.MUL, reg(1), imm(3)), np.arange(W) * 3)

    def test_mad(self, env):
        _, warp, _, _ = env
        warp.regs[1] = np.arange(W)
        out = run_op(env, Op.MAD, reg(1), imm(2), imm(5))
        assert np.array_equal(out, np.arange(W) * 2 + 5)

    def test_min_max_abs_neg_floor(self, env):
        _, warp, _, _ = env
        warp.regs[1] = np.array([-2.5, -1, 0, 1, 2.5, 3, -4, 5], dtype=float)
        assert np.all(run_op(env, Op.MIN, reg(1), imm(0)) <= 0)
        assert np.all(run_op(env, Op.MAX, reg(1), imm(0)) >= 0)
        assert np.all(run_op(env, Op.ABS, reg(1)) >= 0)
        assert np.array_equal(run_op(env, Op.NEG, reg(1)), -warp.regs[1])
        assert np.array_equal(run_op(env, Op.FLOOR, reg(1)), np.floor(warp.regs[1]))

    def test_integer_logic(self, env):
        _, warp, _, _ = env
        warp.regs[1] = np.arange(W)
        assert np.array_equal(run_op(env, Op.AND, reg(1), imm(1)), np.arange(W) & 1)
        assert np.array_equal(run_op(env, Op.OR, reg(1), imm(4)), np.arange(W) | 4)
        assert np.array_equal(run_op(env, Op.XOR, reg(1), imm(3)), np.arange(W) ^ 3)
        assert np.array_equal(run_op(env, Op.SHL, reg(1), imm(2)), np.arange(W) << 2)
        assert np.array_equal(run_op(env, Op.SHR, reg(1), imm(1)), np.arange(W) >> 1)

    def test_sel(self, env):
        _, warp, _, _ = env
        warp.regs[1] = np.array([0, 1, 0, 1, 0, 1, 0, 1], dtype=float)
        out = run_op(env, Op.SEL, reg(1), imm(10), imm(20))
        assert np.array_equal(out, np.where(warp.regs[1] != 0, 10, 20))

    @pytest.mark.parametrize(
        "cmp,fn",
        [
            (CmpOp.LT, np.less),
            (CmpOp.LE, np.less_equal),
            (CmpOp.GT, np.greater),
            (CmpOp.GE, np.greater_equal),
            (CmpOp.EQ, np.equal),
            (CmpOp.NE, np.not_equal),
        ],
    )
    def test_setp(self, env, cmp, fn):
        _, warp, _, _ = env
        warp.regs[1] = np.arange(W)
        out = run_op(env, Op.SETP, reg(1), imm(4), cmp=cmp)
        assert np.array_equal(out, fn(np.arange(W), 4).astype(float))


class TestSFU:
    def test_rcp_div_sqrt(self, env):
        _, warp, _, _ = env
        warp.regs[1] = np.arange(1, W + 1, dtype=float)
        assert np.allclose(run_op(env, Op.RCP, reg(1)), 1.0 / warp.regs[1])
        assert np.allclose(run_op(env, Op.DIV, imm(2), reg(1)), 2.0 / warp.regs[1])
        assert np.allclose(run_op(env, Op.SQRT, reg(1)), np.sqrt(warp.regs[1]))
        assert np.allclose(run_op(env, Op.RSQRT, reg(1)), 1 / np.sqrt(warp.regs[1]))

    def test_transcendentals(self, env):
        _, warp, _, _ = env
        warp.regs[1] = np.linspace(0.1, 2.0, W)
        assert np.allclose(run_op(env, Op.SIN, reg(1)), np.sin(warp.regs[1]))
        assert np.allclose(run_op(env, Op.COS, reg(1)), np.cos(warp.regs[1]))
        assert np.allclose(run_op(env, Op.EX2, reg(1)), np.exp2(warp.regs[1]))
        assert np.allclose(run_op(env, Op.LG2, reg(1)), np.log2(warp.regs[1]))


class TestSpecials:
    def test_tid_and_params(self, env):
        executor, warp, mask, _ = env
        out = run_op(env, Op.MOV, special("tid"))
        assert np.array_equal(out, np.arange(W))
        assert np.all(run_op(env, Op.MOV, special("param", 0)) == 2.0)
        assert np.all(run_op(env, Op.MOV, special("param", 1)) == 3.0)

    def test_geometry_specials(self, env):
        assert np.all(run_op(env, Op.MOV, special("ntid")) == W)
        assert np.all(run_op(env, Op.MOV, special("ctaid")) == 0)
        assert np.all(run_op(env, Op.MOV, special("nctaid")) == 1)
        assert np.all(run_op(env, Op.MOV, special("warpid")) == 1)

    def test_missing_param_raises(self, env):
        from repro.functional.executor import ExecutionError

        with pytest.raises(ExecutionError):
            run_op(env, Op.MOV, special("param", 7))


class TestMasking:
    def test_partial_mask_writes(self, env):
        executor, warp, _, _ = env
        mask = np.zeros(W, dtype=bool)
        mask[::2] = True
        instr = Instruction(Op.MOV, dst=0, srcs=(imm(9),))
        executor.execute(instr, warp, mask)
        assert np.all(warp.regs[0][::2] == 9)
        assert np.all(warp.regs[0][1::2] == 0)

    def test_predication(self, env):
        executor, warp, mask, _ = env
        warp.regs[3] = (np.arange(W) < 4).astype(float)
        instr = Instruction(Op.MOV, dst=0, srcs=(imm(5),), pred=3)
        out = executor.execute(instr, warp, mask)
        assert np.array_equal(out.active, np.arange(W) < 4)
        assert np.all(warp.regs[0][:4] == 5) and np.all(warp.regs[0][4:] == 0)

    def test_negated_predication(self, env):
        executor, warp, mask, _ = env
        warp.regs[3] = (np.arange(W) < 4).astype(float)
        instr = Instruction(Op.MOV, dst=0, srcs=(imm(5),), pred=3, pred_neg=True)
        out = executor.execute(instr, warp, mask)
        assert np.array_equal(out.active, np.arange(W) >= 4)


class TestBranchesAndMemory:
    def test_branch_taken_mask(self, env):
        executor, warp, mask, _ = env
        warp.regs[2] = (np.arange(W) % 2).astype(float)
        instr = Instruction(Op.BRA, srcs=(reg(2),), target=0)
        out = executor.execute(instr, warp, mask)
        assert np.array_equal(out.taken, np.arange(W) % 2 == 1)

    def test_unconditional_branch_all_taken(self, env):
        executor, warp, mask, _ = env
        instr = Instruction(Op.BRA, target=0)
        out = executor.execute(instr, warp, mask)
        assert out.taken.all()

    def test_load_store_roundtrip(self, env):
        executor, warp, mask, memory = env
        base = memory.alloc(W * 4)
        warp.regs[1] = np.arange(W) * 4.0
        warp.regs[2] = np.arange(W) + 100.0
        st = Instruction(
            Op.ST, srcs=(imm(base), reg(1), reg(2)), space=MemSpace.GLOBAL
        )
        executor.execute(st, warp, mask)
        ld = Instruction(
            Op.LD, dst=3, srcs=(imm(base), reg(1)), space=MemSpace.GLOBAL
        )
        out = executor.execute(ld, warp, mask)
        assert out.is_memory and out.space is MemSpace.GLOBAL
        assert np.array_equal(warp.regs[3], np.arange(W) + 100.0)

    def test_static_offset_addressing(self, env):
        executor, warp, mask, memory = env
        base = memory.alloc(2 * W * 4)
        memory.write_array(base + 4, np.arange(W) + 7)
        warp.regs[1] = np.arange(W) * 4.0
        ld = Instruction(
            Op.LD, dst=3, srcs=(imm(base), reg(1)), offset=4, space=MemSpace.GLOBAL
        )
        executor.execute(ld, warp, mask)
        assert np.array_equal(warp.regs[3], np.arange(W) + 7)

    def test_shared_space_isolated_from_global(self, env):
        executor, warp, mask, memory = env
        warp.regs[1] = np.arange(W) * 4.0
        st = Instruction(Op.ST, srcs=(imm(0), reg(1), imm(42)), space=MemSpace.SHARED)
        executor.execute(st, warp, mask)
        assert np.all(warp.shared.read_array(0, W) == 42)
        assert np.all(memory.read_array(128, W) == 0)

    def test_atomic_add_returns_old(self, env):
        executor, warp, mask, memory = env
        base = memory.alloc(4)
        atom = Instruction(
            Op.ATOM_ADD, dst=4, srcs=(imm(base), imm(1.0)), space=MemSpace.GLOBAL
        )
        executor.execute(atom, warp, mask)
        # All 8 threads hit the same word: serialised old values 0..7.
        assert np.array_equal(np.sort(warp.regs[4]), np.arange(W))
        assert memory.read_array(base, 1)[0] == W
