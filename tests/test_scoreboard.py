"""Scoreboards: hazard detection, capacity, and the dependency matrix.

Includes a re-enactment of the paper's Figure 6 divergence-convergence
graph and a property test showing the matrix scoreboard is a
conservative superset of the exact mask scoreboard.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.isa.instructions import Instruction, Op, imm, reg
from repro.timing.scoreboard import (
    MaskScoreboard,
    MatrixScoreboard,
    WarpScoreboard,
    build_transition,
    make_scoreboard,
)


def mov(dst, src):
    return Instruction(Op.MOV, dst=dst, srcs=(reg(src),))


def movi(dst):
    return Instruction(Op.MOV, dst=dst, srcs=(imm(0),))


class TestFactory:
    @pytest.mark.parametrize("kind", ["warp", "mask", "matrix"])
    def test_make(self, kind):
        sb = make_scoreboard(kind, 6)
        assert sb.kind == kind and sb.capacity == 6

    def test_unknown_kind(self):
        with pytest.raises(ValueError):
            make_scoreboard("bogus", 6)


class TestWarpScoreboard:
    def test_raw_hazard(self):
        sb = WarpScoreboard(6)
        sb.add(movi(1), 0b1111, 0)
        assert not sb.can_issue(mov(2, 1), 0b1111, 0)

    def test_waw_hazard(self):
        sb = WarpScoreboard(6)
        sb.add(movi(1), 0b1111, 0)
        assert not sb.can_issue(movi(1), 0b1111, 0)

    def test_independent_ok(self):
        sb = WarpScoreboard(6)
        sb.add(movi(1), 0b1111, 0)
        assert sb.can_issue(mov(3, 2), 0b1111, 0)

    def test_warp_granular_false_dependency(self):
        sb = WarpScoreboard(6)
        sb.add(movi(1), 0b0011, 0)
        # Disjoint threads still conflict: warp-granular.
        assert not sb.can_issue(mov(2, 1), 0b1100, 1)

    def test_capacity(self):
        sb = WarpScoreboard(2)
        sb.add(movi(1), 1, 0)
        sb.add(movi(2), 1, 0)
        assert not sb.has_room(movi(3))
        assert sb.can_issue(Instruction(Op.BRA, target=0), 1, 0)  # no dst

    def test_release(self):
        sb = WarpScoreboard(6)
        e = sb.add(movi(1), 1, 0)
        sb.release(e)
        assert sb.can_issue(mov(2, 1), 1, 0)
        sb.release(e)  # double release is a no-op
        assert len(sb) == 0


class TestMaskScoreboard:
    def test_disjoint_threads_independent(self):
        sb = MaskScoreboard(6)
        sb.add(movi(1), 0b0011, 0)
        assert sb.can_issue(mov(2, 1), 0b1100, 1)
        assert not sb.can_issue(mov(2, 1), 0b0110, 1)


class TestMatrixScoreboard:
    def test_same_slot_dependency(self):
        sb = MatrixScoreboard(6)
        sb.add(movi(1), 0b1111, 0)
        assert not sb.can_issue(mov(2, 1), 0b1111, 0)
        assert sb.can_issue(mov(2, 1), 0b1111, 1)  # other slot: no deps yet

    def test_transition_moves_dependency(self):
        sb = MatrixScoreboard(6)
        sb.add(movi(1), 0b1111, 0)
        # All threads of slot 0 move to slot 1 (e.g. CPC swap).
        t = build_transition((0b1111, 0, 0), (0, 0b1111, 0))
        sb.on_transition(t)
        assert sb.can_issue(mov(2, 1), 0b1111, 0)
        assert not sb.can_issue(mov(2, 1), 0b1111, 1)

    def test_divergence_spreads_dependency(self):
        sb = MatrixScoreboard(6)
        sb.add(movi(1), 0b1111, 0)
        # Slot 0 splits into slots 0 and 1.
        t = build_transition((0b1111, 0, 0), (0b0011, 0b1100, 0))
        sb.on_transition(t)
        assert not sb.can_issue(mov(2, 1), 0b0011, 0)
        assert not sb.can_issue(mov(2, 1), 0b1100, 1)

    def test_figure6_chain(self):
        """The paper's Figure 6 example: dependencies track threads
        through divergence and reconvergence via matrix products."""
        sb = MatrixScoreboard(6)
        # t-3: instruction writes r1 from the primary split {0,1,2,3}.
        e = sb.add(movi(1), 0b1111, 0)
        # Divergence: {0,1} stay primary, {2,3} to secondary.
        sb.on_transition(build_transition((0b1111, 0, 0), (0b0011, 0b1100, 0)))
        assert e.row == [True, True, False]
        # Secondary spills to the heap (slot 2).
        sb.on_transition(build_transition((0b0011, 0b1100, 0), (0b0011, 0, 0b1100)))
        assert e.row == [True, False, True]
        # Reconvergence: everything merges back into the primary.
        sb.on_transition(build_transition((0b0011, 0, 0b1100), (0b1111, 0, 0)))
        assert e.row == [True, False, False]

    def test_conservative_after_merge_split(self):
        """After merge-then-split the matrix may flag threads that the
        exact mask tracking would clear — conservative, never unsafe."""
        mask_sb = MaskScoreboard(6)
        mat_sb = MatrixScoreboard(6)
        mask_sb.add(movi(1), 0b0011, 0)
        mat_sb.add(movi(1), 0b0011, 0)
        # Merge {0,1} and {2,3}, then split again as {0,2} / {1,3}.
        mat_sb.on_transition(build_transition((0b0011, 0b1100, 0), (0b1111, 0, 0)))
        mat_sb.on_transition(build_transition((0b1111, 0, 0), (0b0101, 0b1010, 0)))
        # Exact: split {1,3} & mask {0,1} overlap via thread 1 => dep.
        assert not mask_sb.can_issue(mov(2, 1), 0b1010, 1)
        # Matrix says both slots depend (conservative superset).
        assert not mat_sb.can_issue(mov(2, 1), 0b0101, 0)
        assert not mat_sb.can_issue(mov(2, 1), 0b1010, 1)


@st.composite
def slot_histories(draw):
    """Random warp-slot mask evolutions over 8 threads, 3 slots."""
    steps = draw(st.integers(1, 6))
    history = []
    threads = list(range(8))
    state = {t: 0 for t in threads}  # every thread starts in slot 0
    history.append(state.copy())
    for _ in range(steps):
        new = {t: draw(st.integers(0, 2)) for t in threads}
        history.append(new)
    return history


def _masks_of(state):
    out = [0, 0, 0]
    for t, slot in state.items():
        out[slot] |= 1 << t
    return tuple(out)


class TestConservativeProperty:
    @given(slot_histories(), st.integers(0, 2))
    @settings(max_examples=120, deadline=None)
    def test_matrix_superset_of_exact(self, history, query_slot):
        """Matrix dependencies always include the exact thread-tracking
        dependencies, regardless of the divergence history."""
        mat = MatrixScoreboard(6)
        entry_mask = _masks_of(history[0])[0]
        mat.add(movi(1), entry_mask, 0)
        for before, after in zip(history, history[1:]):
            mat.on_transition(build_transition(_masks_of(before), _masks_of(after)))
        final = _masks_of(history[-1])
        query_mask = final[query_slot]
        # Exact dependency: query threads intersect the entry threads.
        exact_dep = (query_mask & entry_mask) != 0
        matrix_dep = not mat.can_issue(mov(2, 1), query_mask, query_slot)
        if exact_dep and query_mask:
            assert matrix_dep, "matrix scoreboard missed a true dependency"
