"""Edge cases across the ISA and layout passes."""

import numpy as np
import pytest

from repro.functional import MemoryImage, run_kernel
from repro.isa import CmpOp, KernelBuilder
from repro.isa.cfg import ControlFlowGraph
from repro.isa.layout import insert_sync_markers, validate_frontier_layout
from repro.isa.program import AssemblyError, Program
from repro.isa.instructions import Instruction, Op


class TestUnstructuredControlFlow:
    def _shared_tail_kernel(self):
        """Two divergent paths jumping into one shared tail block —
        the TMD shape where stack reconvergence is late."""
        kb = KernelBuilder("shared_tail")
        t, p, q, v, a = kb.regs("t", "p", "q", "v", "a")
        kb.mov(t, kb.tid)
        kb.and_(p, t, 1)
        kb.bra("path_a", cond=p)
        kb.and_(q, t, 2)
        kb.bra("path_b", cond=q)
        kb.mov(v, 1)
        kb.bra("tail")
        kb.label("path_a")
        kb.mov(v, 2)
        kb.bra("tail")
        kb.label("path_b")
        kb.mov(v, 3)
        kb.label("tail")
        kb.mul(a, t, 4)
        kb.st(kb.param(0), v, index=a)
        kb.exit_()
        return kb

    def test_multi_predecessor_join_analyses(self):
        kb = self._shared_tail_kernel()
        kernel = kb.build(cta_size=32, grid_size=1, params=(0.0,))
        cfg = ControlFlowGraph(kernel.program)
        joins = cfg.join_blocks()
        assert joins  # the shared tail is a join

    def test_functional_result(self):
        kb = self._shared_tail_kernel()
        mem = MemoryImage()
        out = mem.alloc(32 * 4)
        kernel = kb.build(cta_size=32, grid_size=1, params=(out,))
        run_kernel(kernel, mem)
        t = np.arange(32)
        expect = np.where(t % 2 == 1, 2, np.where(t % 4 >= 2, 3, 1))
        np.testing.assert_array_equal(mem.read_array(out, 32), expect)

    def test_timing_modes_agree(self):
        from repro.core import presets
        from repro.core.simulator import simulate

        results = []
        for mode in ("baseline", "sbi", "sbi_swi"):
            kb = self._shared_tail_kernel()
            mem = MemoryImage()
            out = mem.alloc(32 * 4)
            kernel = kb.build(cta_size=32, grid_size=1, params=(out,))
            simulate(kernel, mem, presets.by_name(mode))
            results.append(mem.read_array(out, 32))
        assert all(np.array_equal(results[0], r) for r in results[1:])


class TestLoopsWithBreaks:
    def test_loop_with_early_break(self):
        kb = KernelBuilder("brk")
        t, c, p, v, a = kb.regs("t", "c", "p", "v", "a")
        kb.mov(t, kb.tid)
        kb.mov(c, 0)
        kb.mov(v, 0)
        kb.label("loop")
        kb.add(v, v, 1)
        kb.setp(p, CmpOp.EQ, v, t)  # data-dependent break
        kb.bra("out", cond=p)
        kb.add(c, c, 1)
        kb.setp(p, CmpOp.LT, c, 8)
        kb.bra("loop", cond=p)
        kb.label("out")
        kb.mul(a, t, 4)
        kb.st(kb.param(0), v, index=a)
        kb.exit_()
        mem = MemoryImage()
        out = mem.alloc(32 * 4)
        kernel = kb.build(cta_size=32, grid_size=1, params=(out,))
        assert validate_frontier_layout(kernel.program) == []
        run_kernel(kernel, mem)
        t = np.arange(32)
        # Threads 1..8 break when the counter reaches their id; others
        # run all 8 iterations.
        expect = np.where((t >= 1) & (t <= 8), t, 8)
        np.testing.assert_array_equal(mem.read_array(out, 32), expect)

    def test_nested_loops(self):
        kb = KernelBuilder("nest")
        t, i, j, acc, p, a = kb.regs("t", "i", "j", "acc", "p", "a")
        kb.mov(t, kb.tid)
        kb.mov(acc, 0)
        kb.mov(i, 0)
        kb.label("outer")
        kb.and_(j, t, 3)
        kb.label("inner")
        kb.add(acc, acc, 1)
        kb.sub(j, j, 1)
        kb.setp(p, CmpOp.GE, j, 0)
        kb.bra("inner", cond=p)
        kb.add(i, i, 1)
        kb.setp(p, CmpOp.LT, i, 3)
        kb.bra("outer", cond=p)
        kb.mul(a, t, 4)
        kb.st(kb.param(0), acc, index=a)
        kb.exit_()
        mem = MemoryImage()
        out = mem.alloc(32 * 4)
        kernel = kb.build(cta_size=32, grid_size=1, params=(out,))
        run_kernel(kernel, mem)
        expect = 3 * ((np.arange(32) % 4) + 1)
        np.testing.assert_array_equal(mem.read_array(out, 32), expect)


class TestMarkers:
    def test_markers_idempotent(self):
        kb = KernelBuilder("m")
        p, v = kb.regs("p", "v")
        kb.and_(p, kb.tid, 1)
        kb.bra("e", cond=p)
        kb.mov(v, 1)
        kb.label("e")
        kb.exit_()
        prog = Program(list(kb._instrs), dict(kb._labels))
        first = insert_sync_markers(prog)
        second = insert_sync_markers(prog)
        assert first == second == 1  # same marker recomputed, not doubled

    def test_straightline_has_no_markers(self):
        kb = KernelBuilder("s")
        (v,) = kb.regs("v")
        kb.mov(v, 1)
        kb.add(v, v, 2)
        kb.exit_()
        kernel = kb.build(cta_size=32)
        assert all(i.sync_pcdiv is None for i in kernel.program)

    def test_uniform_branch_no_divergence_at_runtime(self):
        from repro.core import presets
        from repro.core.simulator import simulate

        kb = KernelBuilder("u")
        p, v = kb.regs("p", "v")
        kb.setp(p, CmpOp.GE, kb.ntid, 0)  # always true, uniform
        kb.bra("x", cond=p)
        kb.mov(v, 1)
        kb.label("x")
        kb.exit_()
        kernel = kb.build(cta_size=64, grid_size=1)
        stats = simulate(kernel, MemoryImage(), presets.sbi())
        assert stats.divergent_branches == 0
