"""Program assembly, label resolution and validation."""

import pytest

from repro.isa.instructions import Instruction, Op, imm, reg
from repro.isa.program import AssemblyError, Program


def _exit():
    return Instruction(Op.EXIT)


class TestResolution:
    def test_label_resolution(self):
        prog = Program(
            [Instruction(Op.BRA, target="end"), Instruction(Op.NOP), _exit()],
            labels={"end": 2},
        )
        assert prog[0].target == 2

    def test_undefined_label(self):
        with pytest.raises(AssemblyError, match="undefined label"):
            Program([Instruction(Op.BRA, target="nowhere"), _exit()])

    def test_pcs_assigned(self):
        prog = Program([Instruction(Op.NOP), Instruction(Op.NOP), _exit()])
        assert [i.pc for i in prog] == [0, 1, 2]

    def test_numeric_targets_kept(self):
        prog = Program([Instruction(Op.BRA, target=1), _exit()])
        assert prog[0].target == 1


class TestValidation:
    def test_empty_program_rejected(self):
        with pytest.raises(AssemblyError, match="empty"):
            Program([])

    def test_out_of_range_target(self):
        with pytest.raises(AssemblyError, match="out of range"):
            Program([Instruction(Op.BRA, target=5), _exit()])

    def test_must_end_with_exit_or_branch(self):
        with pytest.raises(AssemblyError, match="must end"):
            Program([Instruction(Op.NOP)])

    def test_ending_with_unconditional_branch_ok(self):
        prog = Program([Instruction(Op.NOP), Instruction(Op.BRA, target=0)])
        assert len(prog) == 2


class TestListing:
    def test_listing_contains_labels_and_markers(self):
        instrs = [
            Instruction(Op.MOV, dst=0, srcs=(imm(1),)),
            Instruction(Op.BRA, target="tail"),
            _exit(),
        ]
        prog = Program(instrs, labels={"tail": 2})
        prog[2].sync_pcdiv = 1
        text = prog.listing()
        assert "tail:" in text
        assert "sync(PCdiv=1)" in text

    def test_label_at(self):
        prog = Program([Instruction(Op.NOP), _exit()], labels={"x": 1})
        assert prog.label_at(1) == "x"
        assert prog.label_at(0) is None

    def test_iteration_and_len(self):
        prog = Program([Instruction(Op.NOP), _exit()])
        assert len(list(prog)) == len(prog) == 2
