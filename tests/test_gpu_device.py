"""The multi-SM device layer: dispatcher, equivalence, determinism."""

import numpy as np
import pytest

from repro.core import presets
from repro.core.gpu import CTADispatcher, GPUDevice, simulate_device
from repro.core.simulator import simulate
from repro.isa.builder import KernelBuilder
from repro.timing.config import GPUConfig, SMConfig
from repro.workloads import ALL_WORKLOADS, get_workload
from repro.workloads.common import emit_byte_index, emit_global_tid


def _saxpy_kernel(grid_size=8, cta_size=128):
    """y[i] = 2*x[i] + y[i] over the whole grid (one CTA per slice)."""
    kb = KernelBuilder("saxpy")
    i, b, x, y = kb.regs("i", "b", "x", "y")
    emit_global_tid(kb, i)
    emit_byte_index(kb, b, i)
    kb.ld(x, kb.param(0), index=b)
    kb.ld(y, kb.param(1), index=b)
    kb.mad(y, x, 2, y)
    kb.st(kb.param(1), y, index=b)
    kb.exit_()
    return kb.build(cta_size=cta_size, grid_size=grid_size)


def _saxpy_instance(grid_size=8, cta_size=128):
    from repro.functional.memory import MemoryImage

    n = grid_size * cta_size
    mem = MemoryImage(1 << 20)
    rng = np.random.default_rng(7)
    x = rng.integers(0, 100, n).astype(np.float64)
    y = rng.integers(0, 100, n).astype(np.float64)
    ax = mem.alloc_array(x)
    ay = mem.alloc_array(y)
    kernel = _saxpy_kernel(grid_size, cta_size).with_params(ax, ay)
    return kernel, mem, ay, 2 * x + y


class TestCTADispatcher:
    def test_sequential_order(self):
        d = CTADispatcher(3)
        assert [d.acquire() for _ in range(4)] == [0, 1, 2, None]

    def test_has_pending(self):
        d = CTADispatcher(1)
        assert d.has_pending() and d.remaining == 1
        d.acquire()
        assert not d.has_pending() and d.remaining == 0

    def test_empty_grid(self):
        d = CTADispatcher(0)
        assert not d.has_pending() and d.acquire() is None


EQUIVALENCE_WORKLOADS = ("histogram", "bfs", "matrixmul", "transpose")


class TestSingleSMEquivalence:
    """A 1-SM device must be cycle- and byte-identical to simulate()."""

    @pytest.mark.parametrize("workload", EQUIVALENCE_WORKLOADS)
    @pytest.mark.parametrize("mode", ("baseline", "sbi_swi"))
    def test_cycles_and_outputs_match(self, workload, mode):
        ref = get_workload(workload, "tiny")
        dev = get_workload(workload, "tiny")
        sm_cfg = presets.by_name(mode)
        s = simulate(ref.kernel, ref.memory, sm_cfg)
        ds = simulate_device(dev.kernel, dev.memory, GPUConfig(sm=sm_cfg, sm_count=1))
        assert ds.cycles == s.cycles
        assert ds.sm_stats[0].to_dict() == s.to_dict()
        for (_, a), (_, b) in zip(
            sorted(ref.read_outputs().items()), sorted(dev.read_outputs().items())
        ):
            assert np.array_equal(a, b)

    @pytest.mark.parametrize("workload", ALL_WORKLOADS)
    def test_full_suite_equivalence(self, workload):
        """Acceptance: a default 1-SM device reproduces simulate()
        byte- and cycle-exactly on every tier-1 workload."""
        ref = get_workload(workload, "tiny")
        dev = get_workload(workload, "tiny")
        s = simulate(ref.kernel, ref.memory, SMConfig())
        ds = simulate_device(dev.kernel, dev.memory, GPUConfig())
        assert ds.cycles == s.cycles
        assert ds.sm_stats[0].to_dict() == s.to_dict()
        for (_, a), (_, b) in zip(
            sorted(ref.read_outputs().items()), sorted(dev.read_outputs().items())
        ):
            assert np.array_equal(a, b)

    def test_device_ipc_matches_sm_ipc(self):
        inst = get_workload("histogram", "tiny")
        ds = simulate_device(inst.kernel, inst.memory, GPUConfig())
        assert ds.ipc == pytest.approx(ds.sm_stats[0].ipc)


class TestMultiSM:
    def _device(self, sm_count, **overrides):
        return presets.device("baseline", sm_count=sm_count, **overrides)

    def test_grid_sharded_across_sms(self):
        kernel, mem, _, _ = _saxpy_instance(grid_size=8)
        ds = simulate_device(kernel, mem, self._device(4))
        per_sm = [s.ctas_launched for s in ds.sm_stats]
        assert sum(per_sm) == 8
        assert all(c >= 1 for c in per_sm)  # breadth-first initial fill

    def test_functional_output_correct(self):
        kernel, mem, ay, expect = _saxpy_instance(grid_size=8)
        simulate_device(kernel, mem, self._device(4))
        assert np.array_equal(mem.read_array(ay, len(expect)), expect)

    def test_workload_functional_check_multi_sm(self):
        for workload in ("transpose", "histogram"):
            inst = get_workload(workload, "tiny")
            simulate_device(inst.kernel, inst.memory, presets.device("sbi_swi", sm_count=2))
            assert inst.numpy_check is not None
            inst.numpy_check(inst.memory)

    def test_deterministic(self):
        """Same seed/config -> bit-identical DeviceStats."""
        runs = []
        for _ in range(2):
            inst = get_workload("transpose", "tiny")
            ds = simulate_device(
                inst.kernel, inst.memory, presets.device("sbi_swi", sm_count=4)
            )
            runs.append(ds.to_dict())
        assert runs[0] == runs[1]

    def test_more_sms_not_slower(self):
        kernel, mem, _, _ = _saxpy_instance(grid_size=8)
        one = simulate_device(*_saxpy_instance(grid_size=8)[:2], self._device(1))
        four = simulate_device(kernel, mem, self._device(4))
        assert four.cycles < one.cycles

    def test_grid_smaller_than_device(self):
        """SMs beyond the grid stay idle and the run still completes."""
        inst = get_workload("matrixmul", "tiny")  # 1 CTA
        ds = simulate_device(inst.kernel, inst.memory, self._device(4))
        assert ds.ctas_launched == 1
        assert sum(1 for s in ds.sm_stats if s.ctas_launched) == 1

    def test_l2_shared_across_sms(self):
        kernel, mem, _, _ = _saxpy_instance(grid_size=8)
        ds = simulate_device(kernel, mem, self._device(4))
        assert ds.l2_accesses > 0
        assert ds.dram_bytes > 0

    def test_no_l2_private_channels(self):
        kernel, mem, _, _ = _saxpy_instance(grid_size=8)
        ds = simulate_device(kernel, mem, self._device(4, l2_size=0))
        assert ds.l2_accesses == 0
        assert ds.dram_bytes > 0


class TestDeviceStatsAggregation:
    def test_totals_sum_over_sms(self):
        kernel, mem, _, _ = _saxpy_instance(grid_size=8)
        ds = simulate_device(kernel, mem, presets.device("baseline", sm_count=4))
        assert ds.thread_instructions == sum(
            s.thread_instructions for s in ds.sm_stats
        )
        total = ds.total
        assert total.cycles == ds.cycles
        assert total.thread_instructions == ds.thread_instructions
        assert total.ctas_launched == 8

    def test_round_trip_dict(self):
        inst = get_workload("histogram", "tiny")
        ds = simulate_device(inst.kernel, inst.memory, presets.device("baseline", sm_count=2))
        from repro.timing.stats import DeviceStats

        again = DeviceStats.from_dict(ds.to_dict())
        assert again.to_dict() == ds.to_dict()
        assert again.ipc == ds.ipc


class TestGPUConfig:
    def test_defaults_match_single_sm_model(self):
        cfg = GPUConfig()
        assert cfg.sm_count == 1 and not cfg.uses_l2
        assert cfg.sm_dram_share == cfg.sm.dram_bandwidth

    def test_bandwidth_scales_with_sm_count(self):
        cfg = GPUConfig(sm_count=4)
        assert cfg.total_dram_bandwidth == 4 * cfg.sm.dram_bandwidth

    def test_explicit_bandwidth_partitions(self):
        cfg = GPUConfig(
            sm_count=2,
            l2_size=1 << 20,
            dram_partitions=4,
            dram_bandwidth=32.0,
        )
        assert cfg.partition_bandwidth == 8.0
        assert cfg.l2_slice_size == (1 << 20) // 4

    def test_validation(self):
        with pytest.raises(ValueError):
            GPUConfig(sm_count=0)
        with pytest.raises(ValueError):
            GPUConfig(l2_size=1000)  # not sets * ways * block
        with pytest.raises(ValueError):
            GPUConfig(l2_size=1 << 20, l2_block=96)  # not multiple of sector
        with pytest.raises(ValueError):
            GPUConfig(l2_size=1 << 20, dram_partitions=3)

    def test_replace_revalidates(self):
        cfg = GPUConfig()
        with pytest.raises(ValueError):
            cfg.replace(sm_count=-1)

    def test_describe_mentions_l2(self):
        assert "no L2" in GPUConfig().describe()
        assert "L2" in presets.device().describe()
