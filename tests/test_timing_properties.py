"""Timing-model sanity properties that must hold for any kernel."""

import numpy as np
import pytest

from repro.core import presets
from repro.core.simulator import simulate
from repro.functional.memory import MemoryImage
from repro.isa.builder import KernelBuilder
from repro.isa.instructions import CmpOp


def _mixed_kernel():
    """Arithmetic + SFU + memory mix with mild divergence."""
    kb = KernelBuilder("mixed")
    t, p, v, a, c = kb.regs("t", "p", "v", "a", "c")
    kb.mov(t, kb.tid)
    kb.mad(t, kb.ctaid, kb.ntid, t)
    kb.mul(a, t, 4)
    kb.ld(v, kb.param(0), index=a)
    kb.and_(c, t, 3)
    kb.label("loop")
    kb.mad(v, v, 1.0009765625, 0.5)
    kb.sqrt(v, v)
    kb.sub(c, c, 1)
    kb.setp(p, CmpOp.GE, c, 0)
    kb.bra("loop", cond=p)
    kb.st(kb.param(0), v, index=a)
    kb.exit_()
    return kb


def _run(config, n=1024):
    mem = MemoryImage()
    data = mem.alloc_array(np.linspace(1.0, 2.0, n))
    kernel = _mixed_kernel().build(cta_size=256, grid_size=n // 256, params=(data,))
    return simulate(kernel, mem, config)


class TestBounds:
    @pytest.mark.parametrize(
        "name,peak",
        [("baseline", 64), ("warp64", 64), ("sbi", 104), ("swi", 104), ("sbi_swi", 104)],
    )
    def test_ipc_within_peak(self, name, peak):
        stats = _run(presets.by_name(name))
        assert 0 < stats.ipc <= peak

    def test_issue_rate_within_width(self):
        for name in ("baseline", "sbi", "swi", "sbi_swi"):
            stats = _run(presets.by_name(name))
            assert stats.issue_ipc <= presets.by_name(name).issue_width + 1e-9
        stats = _run(presets.warp64())
        assert stats.issue_ipc <= 1.0 + 1e-9

    def test_busy_cycles_bounded(self):
        stats = _run(presets.baseline())
        assert 0 < stats.busy_cycles <= stats.cycles

    def test_avg_active_threads_within_warp(self):
        for name in ("baseline", "sbi_swi"):
            stats = _run(presets.by_name(name))
            width = presets.by_name(name).warp_width
            assert 0 < stats.avg_active_threads <= width


class TestMonotonicity:
    def test_slower_memory_never_helps(self):
        fast = _run(presets.baseline(dram_bandwidth=64.0, dram_latency=50))
        slow = _run(presets.baseline(dram_bandwidth=2.0, dram_latency=600))
        assert slow.cycles >= fast.cycles

    def test_zero_latency_l1_never_hurts(self):
        fast = _run(presets.baseline(l1_latency=1))
        slow = _run(presets.baseline(l1_latency=30))
        assert slow.cycles >= fast.cycles

    def test_more_scoreboard_entries_never_hurt(self):
        few = _run(presets.baseline(scoreboard_entries=1))
        many = _run(presets.baseline(scoreboard_entries=8))
        assert many.cycles <= few.cycles

    def test_longer_exec_latency_costs_cycles(self):
        short = _run(presets.warp64(exec_latency=2))
        long = _run(presets.warp64(exec_latency=24))
        assert long.cycles > short.cycles


class TestAccountingConsistency:
    def test_issue_slot_partition(self):
        for name in ("baseline", "sbi", "swi", "sbi_swi"):
            stats = _run(presets.by_name(name))
            assert (
                stats.issued_primary
                + stats.issued_sbi_secondary
                + stats.issued_swi_secondary
                == stats.instructions_issued
            )

    def test_l1_accesses_partition(self):
        stats = _run(presets.baseline())
        assert stats.l1_hits + stats.l1_misses == stats.l1_accesses

    def test_dram_traffic_at_least_misses(self):
        stats = _run(presets.baseline())
        assert stats.dram_bytes >= stats.l1_misses * 128

    def test_branches_at_least_divergent(self):
        stats = _run(presets.baseline())
        assert stats.branches >= stats.divergent_branches > 0
