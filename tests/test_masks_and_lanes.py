"""Bit-mask helpers and lane-shuffle policies (with property tests)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.timing import lanes, masks


class TestMasks:
    def test_full_mask(self):
        assert masks.full_mask(4) == 0b1111
        assert masks.full_mask(64) == (1 << 64) - 1

    def test_popcount_and_bits(self):
        assert masks.popcount(0b1011) == 3
        assert list(masks.bits(0b1011)) == [0, 1, 3]

    def test_roundtrip_bools(self):
        m = 0b1010_0110
        assert masks.bools_to_mask(masks.mask_to_bools(m, 8)) == m

    @given(st.integers(0, (1 << 16) - 1))
    def test_roundtrip_property(self, m):
        assert masks.bools_to_mask(masks.mask_to_bools(m, 16)) == m

    def test_mask_str(self):
        assert masks.mask_str(0b0101, 4) == "X.X."

    def test_disjoint(self):
        assert masks.split_masks_disjoint([0b01, 0b10])
        assert not masks.split_masks_disjoint([0b01, 0b11])

    def test_permute_mask(self):
        perm = (1, 0, 3, 2)
        assert masks.permute_mask(0b0001, perm) == 0b0010
        assert masks.permute_mask(0b0101, perm) == 0b1010

    @given(st.integers(0, 255))
    def test_permute_preserves_popcount(self, m):
        perm = (7, 6, 5, 4, 3, 2, 1, 0)
        assert masks.popcount(masks.permute_mask(m, perm)) == masks.popcount(m)


class TestWaves:
    def test_full_width_is_one_wave(self):
        assert masks.wave_count(masks.full_mask(32), 32, 32) == 1
        assert masks.wave_count(masks.full_mask(64), 64, 64) == 1

    def test_narrow_unit_streams_in_chunks(self):
        full = masks.full_mask(64)
        assert masks.wave_count(full, 32, 64) == 2
        assert masks.wave_count(full, 8, 64) == 8

    def test_empty_chunks_skipped(self):
        low_half = masks.full_mask(32)
        assert masks.wave_count(low_half, 32, 64) == 1
        one_lane = 1 << 63
        assert masks.wave_count(one_lane, 8, 64) == 1

    def test_empty_mask_costs_one_wave(self):
        assert masks.wave_count(0, 8, 64) == 1

    @given(st.integers(0, (1 << 64) - 1))
    @settings(max_examples=50)
    def test_wave_bounds(self, m):
        w = masks.wave_count(m, 8, 64)
        assert 1 <= w <= 8


class TestLaneShuffles:
    @pytest.mark.parametrize("policy", lanes.POLICIES)
    @pytest.mark.parametrize("width", [4, 8, 16, 32, 64])
    def test_policies_are_permutations(self, policy, width):
        for wid in range(16):
            lanes.permutation(policy, wid, width, 16)  # raises if not

    @given(
        st.sampled_from(lanes.POLICIES),
        st.integers(0, 63),
        st.sampled_from([4, 8, 16, 32, 64]),
        st.integers(1, 64),
    )
    @settings(max_examples=200)
    def test_permutation_property(self, policy, wid, width, count):
        perm = lanes.permutation(policy, wid, width, count)
        assert sorted(perm) == list(range(width))

    def test_identity(self):
        assert lanes.permutation("identity", 3, 8, 4) == tuple(range(8))

    def test_mirror_odd(self):
        even = lanes.permutation("mirror_odd", 2, 8, 4)
        odd = lanes.permutation("mirror_odd", 3, 8, 4)
        assert even == tuple(range(8))
        assert odd == tuple(reversed(range(8)))

    def test_mirror_half(self):
        lo = lanes.permutation("mirror_half", 1, 8, 8)
        hi = lanes.permutation("mirror_half", 7, 8, 8)
        assert lo == tuple(range(8))
        assert hi == tuple(reversed(range(8)))

    def test_xor(self):
        perm = lanes.permutation("xor", 3, 8, 8)
        assert perm == tuple(t ^ 3 for t in range(8))

    def test_bitrev(self):
        assert lanes.bitrev(0b001, 3) == 0b100
        assert lanes.bitrev(0b110, 3) == 0b011
        assert lanes.bitrev(5, 1) == 1  # only low bit considered

    def test_xor_rev_differs_from_xor(self):
        a = lanes.permutation("xor", 1, 64, 16)
        b = lanes.permutation("xor_rev", 1, 64, 16)
        assert a != b

    def test_diagram_shape(self):
        art = lanes.diagram("identity", 4, 4)
        rows = art.splitlines()
        assert len(rows) == 4
        assert all("|" in r for r in rows)

    def test_unknown_policy(self):
        with pytest.raises(ValueError):
            lanes.lane_of("bogus", 0, 0, 64, 16)

    def test_xor_rev_decorrelates_warps(self):
        # The same thread index maps to distinct lanes across warps —
        # the property that makes correlated imbalance SWI-friendly.
        lanes_for_tid0 = {
            lanes.lane_of("xor_rev", 0, wid, 64, 16) for wid in range(16)
        }
        assert len(lanes_for_tid0) == 16
